//! End-to-end smoke tests for the daemon: an in-process NDJSON session over
//! `Cursor`, a TCP round-trip against a real socket, and protocol edge
//! cases (malformed lines, invalid routes, blank lines).

use octopus_net::topology;
use octopus_serve::{serve_lines, Event, PolicyMode, Response, ServeConfig, ServeState};
use std::io::Cursor;

fn new_state(policy: PolicyMode) -> ServeState {
    let cfg = ServeConfig {
        policy,
        ..ServeConfig::default()
    };
    ServeState::new(topology::complete(6), cfg).expect("valid config")
}

fn run_script(state: &mut ServeState, script: &str) -> Vec<Response> {
    let mut out = Vec::new();
    serve_lines(Cursor::new(script.as_bytes()), &mut out, state).expect("in-memory io");
    String::from_utf8(out)
        .expect("utf8 output")
        .lines()
        .map(|l| serde_json::from_str(l).expect("well-formed response"))
        .collect()
}

#[test]
fn ndjson_session_admits_replans_and_shuts_down() {
    let mut state = new_state(PolicyMode::Octopus);
    let script = concat!(
        r#"{"Arrival":{"id":1,"route":[0,3,5],"size":100}}"#,
        "\n",
        r#"{"Arrival":{"id":2,"route":[2,3],"size":30}}"#,
        "\n",
        "\"Replan\"\n",
        "\"Stats\"\n",
        "\"Shutdown\"\n",
    );
    let responses = run_script(&mut state, script);
    assert_eq!(responses.len(), 5);
    assert_eq!(
        responses[0],
        Response::Admitted {
            id: 1,
            backlog: 100
        }
    );
    assert_eq!(
        responses[1],
        Response::Admitted {
            id: 2,
            backlog: 130
        }
    );
    let Response::Plan {
        delivered,
        backlog,
        reconfigured,
        ..
    } = &responses[2]
    else {
        panic!("expected Plan, got {:?}", responses[2]);
    };
    // Greedy mode drains everything the horizon allows: all 130 packets.
    assert_eq!(*delivered, 130);
    assert_eq!(*backlog, 0);
    assert!(reconfigured);
    let Response::Stats { stats } = &responses[3] else {
        panic!("expected Stats, got {:?}", responses[3]);
    };
    assert_eq!(stats.admitted_packets, 130);
    assert_eq!(stats.delivered_packets, 130);
    assert_eq!(stats.backlog, 0);
    assert_eq!(stats.replans, 1);
    assert_eq!(responses[4], Response::Bye { events: 5 });
}

#[test]
fn hysteresis_session_delivers_multihop_across_replans() {
    let mut state = new_state(PolicyMode::Hysteresis);
    // One 2-hop flow: the hysteresis policy serves one matching per
    // re-plan, so delivery takes two re-plans (one hop each).
    let script = concat!(
        r#"{"Arrival":{"id":9,"route":[1,4,2],"size":60}}"#,
        "\n",
        "\"Replan\"\n",
        "\"Replan\"\n",
        "\"Stats\"\n",
    );
    let responses = run_script(&mut state, script);
    assert_eq!(responses.len(), 4); // EOF ends the session without Bye
    let Response::Plan { delivered: d1, .. } = &responses[1] else {
        panic!("expected Plan, got {:?}", responses[1]);
    };
    let Response::Plan { delivered: d2, .. } = &responses[2] else {
        panic!("expected Plan, got {:?}", responses[2]);
    };
    assert_eq!(*d1, 0, "first re-plan only advances packets to the relay");
    assert_eq!(*d2, 60, "second re-plan brings them home");
    let Response::Stats { stats } = &responses[3] else {
        panic!("expected Stats, got {:?}", responses[3]);
    };
    assert_eq!(stats.delivered_packets, 60);
    assert_eq!(stats.backlog, 0);
}

#[test]
fn cancel_removes_queued_packets_and_unknown_ids_are_noops() {
    let mut state = new_state(PolicyMode::Hysteresis);
    let script = concat!(
        r#"{"Arrival":{"id":5,"route":[0,1],"size":25}}"#,
        "\n",
        r#"{"Cancel":{"id":5}}"#,
        "\n",
        r#"{"Cancel":{"id":77}}"#,
        "\n",
    );
    let responses = run_script(&mut state, script);
    assert_eq!(
        responses[1],
        Response::Cancelled {
            id: 5,
            removed: 25,
            backlog: 0
        }
    );
    assert_eq!(
        responses[2],
        Response::Cancelled {
            id: 77,
            removed: 0,
            backlog: 0
        }
    );
}

#[test]
fn bad_lines_get_errors_without_killing_the_session() {
    let mut state = new_state(PolicyMode::Hysteresis);
    let script = concat!(
        "this is not json\n",
        "\n",                                             // blank line: skipped, no response
        r#"{"Arrival":{"id":1,"route":[0,9],"size":5}}"#, // node 9 not in net
        "\n",
        r#"{"Arrival":{"id":1,"route":[0],"size":5}}"#, // single-node route
        "\n",
        r#"{"Arrival":{"id":1,"route":[0,1],"size":5}}"#, // fine
        "\n",
        "\"Stats\"\n",
    );
    let responses = run_script(&mut state, script);
    assert_eq!(responses.len(), 5);
    assert!(matches!(responses[0], Response::Error { .. }));
    assert!(matches!(responses[1], Response::Error { .. }));
    assert!(matches!(responses[2], Response::Error { .. }));
    assert_eq!(responses[3], Response::Admitted { id: 1, backlog: 5 });
    let Response::Stats { stats } = &responses[4] else {
        panic!("expected Stats, got {:?}", responses[4]);
    };
    // Failed admissions must not leak packets into the backlog.
    assert_eq!(stats.admitted_packets, 5);
    assert_eq!(stats.backlog, 5);
}

#[test]
fn mid_window_links_are_interned_on_the_fly() {
    let mut state = new_state(PolicyMode::Octopus);
    // First arrival seeds the key vector; the second, admitted after a
    // re-plan, rides on links the state layer has never seen — the
    // headline bugfix path.
    let r1 = run_script(
        &mut state,
        concat!(
            r#"{"Arrival":{"id":1,"route":[0,1],"size":10}}"#,
            "\n",
            "\"Replan\"\n",
        ),
    );
    assert!(matches!(&r1[1], Response::Plan { delivered: 10, .. }));
    let r2 = run_script(
        &mut state,
        concat!(
            r#"{"Arrival":{"id":2,"route":[3,5,4],"size":20}}"#,
            "\n",
            "\"Replan\"\n",
            "\"Stats\"\n",
        ),
    );
    assert!(matches!(&r2[1], Response::Plan { delivered: 20, .. }));
    let Response::Stats { stats } = &r2[2] else {
        panic!("expected Stats, got {:?}", r2[2]);
    };
    assert_eq!(stats.delivered_packets, 30);
    assert_eq!(stats.interned_links, 3); // (0,1), (3,5), (5,4)
}

#[test]
fn tcp_round_trip_over_a_real_socket() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut state = new_state(PolicyMode::Octopus);
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        serve_lines(reader, stream, &mut state).expect("serve session");
    });

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut ask = |event: &Event| -> Response {
        let line = serde_json::to_string(event).expect("serialize event");
        writeln!(stream, "{line}").expect("send");
        let mut answer = String::new();
        reader.read_line(&mut answer).expect("receive");
        serde_json::from_str(&answer).expect("well-formed response")
    };

    let reply = ask(&Event::Arrival {
        id: 1,
        route: vec![0, 2, 4],
        size: 64,
    });
    assert_eq!(reply, Response::Admitted { id: 1, backlog: 64 });
    let reply = ask(&Event::Replan);
    assert!(matches!(reply, Response::Plan { delivered: 64, .. }));
    let reply = ask(&Event::Shutdown);
    assert_eq!(reply, Response::Bye { events: 3 });
    server.join().expect("server thread");
}

#[test]
fn cache_replays_identical_windows_and_invalidates_on_interning() {
    use octopus_core::CacheConfig;

    // warm = false keeps this test on the exact-replay path only; the
    // warm-start path has its own parity proptest in octopus-core.
    let cfg = ServeConfig {
        policy: PolicyMode::Octopus,
        cache: CacheConfig {
            warm: false,
            ..CacheConfig::default()
        },
        ..ServeConfig::default()
    };
    let mut state = ServeState::new(topology::complete(6), cfg).expect("valid config");

    let plan_of = |responses: &[Response]| -> Vec<octopus_serve::PlanConfig> {
        match responses.last() {
            Some(Response::Plan { configs, .. }) => configs.clone(),
            other => panic!("expected a plan, got {other:?}"),
        }
    };

    // Window 1: one flow on (0, 1) — cold, recorded.
    let r1 = run_script(
        &mut state,
        "{\"Arrival\":{\"id\":1,\"route\":[0,1],\"size\":50}}\n\"Replan\"\n",
    );
    let p1 = plan_of(&r1);
    assert!(!p1.is_empty());
    assert_eq!(state.cache_stats().misses, 1);
    assert_eq!(state.cache_stats().exact_hits, 0);

    // Window 2: a different flow id, same route and size. The drained
    // backlog plus an identical admission reproduces the queue content and
    // no new link is interned, so the fingerprint matches exactly and the
    // daemon replays the cached schedule.
    let r2 = run_script(
        &mut state,
        "{\"Arrival\":{\"id\":2,\"route\":[0,1],\"size\":50}}\n\"Replan\"\n",
    );
    assert_eq!(plan_of(&r2), p1, "exact hit must replay the same schedule");
    assert_eq!(state.cache_stats().exact_hits, 1);
    assert_eq!(state.cache_stats().misses, 1);

    // Window 3: touch a never-seen link (2, 3), cancel it again, then admit
    // the same (0, 1) flow as before. The queue *content* is identical to
    // windows 1 and 2, but admitting (2, 3) interned a new link mid-window —
    // the key-generation bump must invalidate the exact match.
    let r3 = run_script(
        &mut state,
        concat!(
            "{\"Arrival\":{\"id\":3,\"route\":[2,3],\"size\":10}}\n",
            "{\"Cancel\":{\"id\":3}}\n",
            "{\"Arrival\":{\"id\":4,\"route\":[0,1],\"size\":50}}\n",
            "\"Replan\"\n",
        ),
    );
    assert_eq!(
        plan_of(&r3),
        p1,
        "the cold re-plan of identical content still emits the same schedule"
    );
    assert_eq!(
        state.cache_stats().misses,
        2,
        "interning mid-window must bump the key generation and miss"
    );
    assert_eq!(state.cache_stats().exact_hits, 1);

    // The protocol surfaces the counters.
    let r4 = run_script(&mut state, "\"Stats\"\n");
    match r4.last() {
        Some(Response::Stats { stats }) => {
            assert_eq!(stats.cache_exact_hits, 1);
            assert_eq!(stats.cache_misses, 2);
            assert_eq!(stats.cache_near_hits, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }
}
