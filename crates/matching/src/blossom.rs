//! Exact maximum-weight matching on **general** (non-bipartite) graphs:
//! the weighted blossom algorithm, `O(V³)`.
//!
//! This is the primal-dual algorithm of Edmonds in Galil's formulation,
//! maintaining dual variables on vertices and (contracted) blossoms and
//! growing alternating trees from unmatched vertices; when the tree meets
//! itself at an odd cycle the cycle is shrunk into a blossom vertex, and
//! blossoms with zero dual are expanded back. Weights are integers
//! (internally doubled so all duals stay integral).
//!
//! The §7 bidirectional-fabric generalization of the Octopus paper calls for
//! exactly this kernel (the paper cites Gabow–Tarjan; this implementation is
//! the classical `O(V³)` variant, ample for the fabric sizes involved). It
//! maximizes total weight over *all* matchings — vertices may stay
//! unmatched, and only strictly positive edges are ever matched.

/// Exact maximum-weight matching over `n` vertices (0-indexed) given
/// undirected integer-weighted edges `(a, b, w)`.
///
/// Self-loops, duplicate pairs (heaviest kept) and non-positive weights are
/// tolerated (the latter dropped). Returns matched pairs as `(min, max)`
/// sorted ascending.
///
/// ```
/// use octopus_matching::blossom::maximum_weight_matching_general;
/// // Path 0-1-2-3: greedy would take the heavy middle edge, the exact
/// // matching takes the two outer edges (2 + 2 > 3).
/// let m = maximum_weight_matching_general(4, &[(0, 1, 2), (1, 2, 3), (2, 3, 2)]);
/// assert_eq!(m, vec![(0, 1), (2, 3)]);
/// ```
// lint:allow(hot-alloc) — amortized: per-solve workspace/result construction; buffers live for the whole matching call, outside the augmentation loops
pub fn maximum_weight_matching_general(n: u32, edges: &[(u32, u32, i64)]) -> Vec<(u32, u32)> {
    if n == 0 {
        return Vec::new();
    }
    let mut solver = Blossom::new(n as usize);
    for &(a, b, w) in edges {
        if a != b && a < n && b < n && w > 0 {
            solver.add_edge(a as usize + 1, b as usize + 1, w);
        }
    }
    solver
        .solve()
        .into_iter()
        .map(|(a, b)| {
            let (a, b) = ((a - 1) as u32, (b - 1) as u32);
            if a < b {
                (a, b)
            } else {
                (b, a)
            }
        })
        // lint:allow(btree-alloc) — cold path: one edge dedup per blossom call
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect()
}

const INF: i64 = i64::MAX / 4;

#[derive(Clone, Copy, Default)]
struct Edge {
    u: usize,
    v: usize,
    w: i64,
}

/// The classical O(V³) weighted-blossom solver (1-indexed internally;
/// indices `n+1..=2n` are contracted blossoms).
struct Blossom {
    n: usize,
    n_x: usize,
    g: Vec<Vec<Edge>>,
    lab: Vec<i64>,
    match_: Vec<usize>,
    slack: Vec<usize>,
    st: Vec<usize>,
    pa: Vec<usize>,
    flower_from: Vec<Vec<usize>>,
    flower: Vec<Vec<usize>>,
    s: Vec<i32>,
    vis: Vec<usize>,
    queue: std::collections::VecDeque<usize>,
    visit_stamp: usize,
}

impl Blossom {
    // lint:allow(hot-alloc) — amortized: per-solve workspace/result construction; buffers live for the whole matching call, outside the augmentation loops
    fn new(n: usize) -> Self {
        let m = 2 * n + 1;
        let mut g = vec![vec![Edge::default(); m]; m];
        for (u, row) in g.iter_mut().enumerate() {
            for (v, e) in row.iter_mut().enumerate() {
                e.u = u;
                e.v = v;
            }
        }
        Blossom {
            n,
            n_x: n,
            g,
            lab: vec![0; m],
            match_: vec![0; m],
            slack: vec![0; m],
            st: vec![0; m],
            pa: vec![0; m],
            flower_from: vec![vec![0; n + 1]; m],
            flower: vec![Vec::new(); m],
            s: vec![0; m],
            vis: vec![0; m],
            queue: std::collections::VecDeque::new(),
            visit_stamp: 0,
        }
    }

    fn add_edge(&mut self, u: usize, v: usize, w: i64) {
        // Doubled weights keep duals integral.
        let w2 = w * 2;
        if w2 > self.g[u][v].w {
            self.g[u][v].w = w2;
            self.g[v][u].w = w2;
        }
    }

    fn e_delta(&self, e: &Edge) -> i64 {
        self.lab[e.u] + self.lab[e.v] - self.g[e.u][e.v].w
    }

    fn update_slack(&mut self, u: usize, x: usize) {
        if self.slack[x] == 0
            || self.e_delta(&self.g[u][x]) < self.e_delta(&self.g[self.slack[x]][x])
        {
            self.slack[x] = u;
        }
    }

    fn set_slack(&mut self, x: usize) {
        self.slack[x] = 0;
        for u in 1..=self.n {
            if self.g[u][x].w > 0 && self.st[u] != x && self.s[self.st[u]] == 0 {
                self.update_slack(u, x);
            }
        }
    }

    fn q_push(&mut self, x: usize) {
        if x <= self.n {
            self.queue.push_back(x);
        } else {
            let children = self.flower[x].clone();
            for i in children {
                self.q_push(i);
            }
        }
    }

    fn set_st(&mut self, x: usize, b: usize) {
        self.st[x] = b;
        if x > self.n {
            let children = self.flower[x].clone();
            for i in children {
                self.set_st(i, b);
            }
        }
    }

    fn get_pr(&mut self, b: usize, xr: usize) -> usize {
        // `xr` is recorded in `flower_from[b]`, so it is a petal of `b` by
        // construction; fall back to the base petal rather than panic.
        let pr = self.flower[b].iter().position(|&y| y == xr).unwrap_or(0);
        if pr % 2 == 1 {
            self.flower[b][1..].reverse();
            self.flower[b].len() - pr
        } else {
            pr
        }
    }

    fn set_match(&mut self, u: usize, v: usize) {
        self.match_[u] = self.g[u][v].v;
        if u > self.n {
            let e = self.g[u][v];
            let xr = self.flower_from[u][e.u];
            let pr = self.get_pr(u, xr);
            for i in 0..pr {
                let (a, b) = (self.flower[u][i], self.flower[u][i ^ 1]);
                self.set_match(a, b);
            }
            self.set_match(xr, v);
            let mut fl = std::mem::take(&mut self.flower[u]);
            fl.rotate_left(pr);
            self.flower[u] = fl;
        }
    }

    fn augment(&mut self, mut u: usize, mut v: usize) {
        loop {
            let xnv = self.st[self.match_[u]];
            self.set_match(u, v);
            if xnv == 0 {
                return;
            }
            self.set_match(xnv, self.st[self.pa[xnv]]);
            u = self.st[self.pa[xnv]];
            v = xnv;
        }
    }

    fn get_lca(&mut self, mut u: usize, mut v: usize) -> usize {
        self.visit_stamp += 1;
        let stamp = self.visit_stamp;
        while u != 0 || v != 0 {
            if u != 0 {
                if self.vis[u] == stamp {
                    return u;
                }
                self.vis[u] = stamp;
                u = self.st[self.match_[u]];
                if u != 0 {
                    u = self.st[self.pa[u]];
                }
            }
            std::mem::swap(&mut u, &mut v);
        }
        0
    }

    // lint:allow(hot-alloc) — amortized: allocates per blossom contraction, bounded by O(V) contractions per solve
    fn add_blossom(&mut self, u: usize, lca: usize, v: usize) {
        let mut b = self.n + 1;
        while b <= self.n_x && self.st[b] != 0 {
            b += 1;
        }
        if b > self.n_x {
            self.n_x += 1;
        }
        self.lab[b] = 0;
        self.s[b] = 0;
        self.match_[b] = self.match_[lca];
        self.flower[b] = vec![lca];
        let mut x = u;
        while x != lca {
            self.flower[b].push(x);
            let y = self.st[self.match_[x]];
            self.flower[b].push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        self.flower[b][1..].reverse();
        let mut x = v;
        while x != lca {
            self.flower[b].push(x);
            let y = self.st[self.match_[x]];
            self.flower[b].push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        self.set_st(b, b);
        for x in 1..=self.n_x {
            self.g[b][x].w = 0;
            self.g[x][b].w = 0;
        }
        for x in 1..=self.n {
            self.flower_from[b][x] = 0;
        }
        let children = self.flower[b].clone();
        for &xs in &children {
            for x in 1..=self.n_x {
                if self.g[b][x].w == 0 || self.e_delta(&self.g[xs][x]) < self.e_delta(&self.g[b][x])
                {
                    self.g[b][x] = self.g[xs][x];
                    self.g[x][b] = self.g[x][xs];
                }
            }
            for x in 1..=self.n {
                if self.flower_from[xs][x] != 0 {
                    self.flower_from[b][x] = xs;
                }
            }
        }
        self.set_slack(b);
    }

    fn expand_blossom(&mut self, b: usize) {
        let children = self.flower[b].clone();
        for &i in &children {
            self.set_st(i, i);
        }
        let xr = self.flower_from[b][self.g[b][self.pa[b]].u];
        let pr = self.get_pr(b, xr);
        let mut i = 0;
        while i < pr {
            let xs = self.flower[b][i];
            let xns = self.flower[b][i + 1];
            self.pa[xs] = self.g[xns][xs].u;
            self.s[xs] = 1;
            self.s[xns] = 0;
            self.slack[xs] = 0;
            self.set_slack(xns);
            self.q_push(xns);
            i += 2;
        }
        self.s[xr] = 1;
        self.pa[xr] = self.pa[b];
        let flen = self.flower[b].len();
        let mut i = pr + 1;
        while i < flen {
            let xs = self.flower[b][i];
            self.s[xs] = -1;
            self.set_slack(xs);
            i += 1;
        }
        self.st[b] = 0;
        self.flower[b].clear();
    }

    /// Processes a tight edge found from the queue; returns true if an
    /// augmenting path was applied.
    fn on_found_edge(&mut self, e: Edge) -> bool {
        let u = self.st[e.u];
        let v = self.st[e.v];
        if self.s[v] == -1 {
            self.pa[v] = e.u;
            self.s[v] = 1;
            let nu = self.st[self.match_[v]];
            self.slack[v] = 0;
            self.slack[nu] = 0;
            self.s[nu] = 0;
            self.q_push(nu);
        } else if self.s[v] == 0 {
            let lca = self.get_lca(u, v);
            if lca == 0 {
                self.augment(u, v);
                self.augment(v, u);
                return true;
            }
            self.add_blossom(u, lca, v);
        }
        false
    }

    /// One phase: grow trees from every free vertex until an augmentation.
    fn matching_phase(&mut self) -> bool {
        for x in 1..=self.n_x {
            self.s[x] = -1;
            self.slack[x] = 0;
        }
        self.queue.clear();
        for x in 1..=self.n_x {
            if self.st[x] == x && self.match_[x] == 0 {
                self.pa[x] = 0;
                self.s[x] = 0;
                self.q_push(x);
            }
        }
        if self.queue.is_empty() {
            return false;
        }
        loop {
            while let Some(u) = self.queue.pop_front() {
                if self.s[self.st[u]] == 1 {
                    continue;
                }
                for v in 1..=self.n {
                    if self.g[u][v].w > 0 && self.st[u] != self.st[v] {
                        if self.e_delta(&self.g[u][v]) == 0 {
                            if self.on_found_edge(self.g[u][v]) {
                                return true;
                            }
                        } else {
                            let sv = self.st[v];
                            self.update_slack(u, sv);
                        }
                    }
                }
            }
            // Dual adjustment.
            let mut d = INF;
            for b in self.n + 1..=self.n_x {
                if self.st[b] == b && self.s[b] == 1 {
                    d = d.min(self.lab[b] / 2);
                }
            }
            for x in 1..=self.n_x {
                if self.st[x] == x && self.slack[x] != 0 {
                    let delta = self.e_delta(&self.g[self.slack[x]][x]);
                    if self.s[x] == -1 {
                        d = d.min(delta);
                    } else if self.s[x] == 0 {
                        d = d.min(delta / 2);
                    }
                }
            }
            for u in 1..=self.n {
                match self.s[self.st[u]] {
                    0 => {
                        if self.lab[u] <= d {
                            return false; // dual hits zero: maximum reached
                        }
                        self.lab[u] -= d;
                    }
                    1 => self.lab[u] += d,
                    _ => {}
                }
            }
            for b in self.n + 1..=self.n_x {
                if self.st[b] == b {
                    match self.s[b] {
                        0 => self.lab[b] += d * 2,
                        1 => self.lab[b] -= d * 2,
                        _ => {}
                    }
                }
            }
            self.queue.clear();
            for x in 1..=self.n_x {
                if self.st[x] == x
                    && self.slack[x] != 0
                    && self.st[self.slack[x]] != x
                    && self.e_delta(&self.g[self.slack[x]][x]) == 0
                {
                    let e = self.g[self.slack[x]][x];
                    if self.on_found_edge(e) {
                        return true;
                    }
                }
            }
            for b in self.n + 1..=self.n_x {
                if self.st[b] == b && self.s[b] == 1 && self.lab[b] == 0 {
                    self.expand_blossom(b);
                }
            }
        }
    }

    // lint:allow(hot-alloc) — amortized: per-solve workspace/result construction; buffers live for the whole matching call, outside the augmentation loops
    fn solve(&mut self) -> Vec<(usize, usize)> {
        for u in 0..=self.n {
            self.st[u] = u;
        }
        let mut w_max = 0i64;
        for u in 1..=self.n {
            for v in 1..=self.n {
                self.flower_from[u][v] = if u == v { u } else { 0 };
                w_max = w_max.max(self.g[u][v].w);
            }
        }
        for u in 1..=self.n {
            self.lab[u] = w_max;
        }
        while self.matching_phase() {}
        let mut out = Vec::new();
        for u in 1..=self.n {
            if self.match_[u] != 0 && self.match_[u] > u {
                out.push((u, self.match_[u]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::general::general_matching_brute;

    fn weight_of(edges: &[(u32, u32, i64)], m: &[(u32, u32)]) -> i64 {
        m.iter()
            .map(|&(a, b)| {
                edges
                    .iter()
                    .filter(|&&(x, y, _)| (x.min(y), x.max(y)) == (a, b))
                    .map(|&(_, _, w)| w)
                    .max()
                    .unwrap_or(0)
            })
            .sum()
    }

    fn assert_valid(n: u32, m: &[(u32, u32)]) {
        let mut used = std::collections::HashSet::new();
        for &(a, b) in m {
            assert!(a < n && b < n && a != b);
            assert!(used.insert(a), "vertex {a} matched twice");
            assert!(used.insert(b), "vertex {b} matched twice");
        }
    }

    #[test]
    fn empty_and_trivial() {
        assert!(maximum_weight_matching_general(0, &[]).is_empty());
        assert!(maximum_weight_matching_general(3, &[]).is_empty());
        assert_eq!(
            maximum_weight_matching_general(2, &[(0, 1, 5)]),
            vec![(0, 1)]
        );
    }

    #[test]
    fn triangle_picks_heaviest() {
        let edges = [(0, 1, 3i64), (1, 2, 2), (0, 2, 1)];
        assert_eq!(maximum_weight_matching_general(3, &edges), vec![(0, 1)]);
    }

    #[test]
    fn path_beats_greedy() {
        // Greedy takes the 3-weight middle edge; the optimum takes the two
        // 2-weight outer edges.
        let edges = [(0, 1, 2i64), (1, 2, 3), (2, 3, 2)];
        let m = maximum_weight_matching_general(4, &edges);
        assert_eq!(m, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn odd_cycle_blossom() {
        // 5-cycle with uniform weights: maximum matching has 2 edges.
        let edges = [(0, 1, 5i64), (1, 2, 5), (2, 3, 5), (3, 4, 5), (4, 0, 5)];
        let m = maximum_weight_matching_general(5, &edges);
        assert_valid(5, &m);
        assert_eq!(weight_of(&edges, &m), 10);
    }

    #[test]
    fn blossom_with_stem() {
        // A triangle blossom hanging off a path — classic augmentation
        // through a shrunk blossom.
        let edges = [
            (0, 1, 4i64),
            (1, 2, 4),
            (2, 3, 4),
            (3, 1, 4),
            (3, 4, 4),
            (4, 5, 4),
        ];
        let m = maximum_weight_matching_general(6, &edges);
        assert_valid(6, &m);
        assert_eq!(weight_of(&edges, &m), 12, "perfect matching exists");
    }

    #[test]
    fn negative_and_zero_weights_ignored() {
        let edges = [(0, 1, -5i64), (1, 2, 0), (2, 3, 7)];
        assert_eq!(maximum_weight_matching_general(4, &edges), vec![(2, 3)]);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut state = 0xb1055_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..800 {
            let n = 2 + (next() % 8) as u32;
            let ne = (next() % 14) as usize;
            let edges: Vec<(u32, u32, i64)> = (0..ne)
                .map(|_| (next() as u32 % n, next() as u32 % n, (next() % 100) as i64))
                .collect();
            let m = maximum_weight_matching_general(n, &edges);
            assert_valid(n, &m);
            let got = weight_of(&edges, &m) as f64;
            let brute_edges: Vec<(u32, u32, f64)> =
                edges.iter().map(|&(a, b, w)| (a, b, w as f64)).collect();
            let want = general_matching_brute(n, &brute_edges);
            assert!(
                (got - want).abs() < 1e-9,
                "trial {trial}: blossom {got} vs brute {want}; edges {edges:?}"
            );
        }
    }

    #[test]
    fn larger_dense_graphs_agree_with_brute() {
        let mut state = 0xdea1_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..60 {
            let n = 7u32;
            // Dense-ish: up to 21 edges, capped at brute's 24-edge limit.
            let mut edges = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    if next() % 3 != 0 {
                        edges.push((a, b, (1 + next() % 50) as i64));
                    }
                }
            }
            edges.truncate(24);
            let m = maximum_weight_matching_general(n, &edges);
            assert_valid(n, &m);
            let got = weight_of(&edges, &m) as f64;
            let brute_edges: Vec<(u32, u32, f64)> =
                edges.iter().map(|&(a, b, w)| (a, b, w as f64)).collect();
            let want = general_matching_brute(n, &brute_edges);
            assert!((got - want).abs() < 1e-9, "blossom {got} vs brute {want}");
        }
    }
}

#[cfg(test)]
mod cross_validation {
    use super::*;
    use crate::{matching_weight, maximum_weight_matching, WeightedBipartiteGraph};

    /// Bipartite graphs are general graphs: the blossom must agree with the
    /// Hungarian algorithm on them (left vertex `u` ↦ `u`, right vertex `v`
    /// ↦ `n_left + v`).
    #[test]
    fn blossom_agrees_with_hungarian_on_bipartite_graphs() {
        let mut state = 0xb1fa_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..300 {
            let nl = 1 + (next() % 7) as u32;
            let nr = 1 + (next() % 7) as u32;
            let ne = (next() % 16) as usize;
            let tuples: Vec<(u32, u32, f64)> = (0..ne)
                .map(|_| {
                    (
                        next() as u32 % nl,
                        next() as u32 % nr,
                        (1 + next() % 500) as f64,
                    )
                })
                .collect();
            let g = WeightedBipartiteGraph::from_tuples(nl, nr, tuples.clone());
            let hungarian = maximum_weight_matching(&g);
            let hw = matching_weight(&g, &hungarian);

            let general: Vec<(u32, u32, i64)> = tuples
                .iter()
                .map(|&(u, v, w)| (u, nl + v, w as i64))
                .collect();
            let bm = maximum_weight_matching_general(nl + nr, &general);
            let bw: i64 = bm
                .iter()
                .map(|&(a, b)| {
                    general
                        .iter()
                        .filter(|&&(x, y, _)| (x.min(y), x.max(y)) == (a, b))
                        .map(|&(_, _, w)| w)
                        .max()
                        .unwrap_or(0)
                })
                .sum();
            assert!(
                (hw - bw as f64).abs() < 1e-9,
                "trial {trial}: hungarian {hw} vs blossom {bw}"
            );
        }
    }
}
