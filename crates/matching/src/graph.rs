/// A weighted edge between left vertex `u` and right vertex `v`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Left endpoint index.
    pub u: u32,
    /// Right endpoint index.
    pub v: u32,
    /// Edge weight (only `weight > 0` edges are useful for maximization).
    pub weight: f64,
}

/// A sparse weighted bipartite graph over `n_left` left and `n_right` right
/// vertices.
///
/// For the Octopus use-case, left vertices are output ports, right vertices
/// input ports (so `n_left == n_right == n`), and the weight of `(i, j)` is
/// `g(i, j, α)` — the maximum weight of α packets waiting to traverse that
/// link.
///
/// Edges with non-positive weight are dropped at construction: they can never
/// increase a maximum-weight matching and every kernel here assumes positive
/// weights. Duplicate `(u, v)` pairs keep the maximum weight.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedBipartiteGraph {
    n_left: u32,
    n_right: u32,
    edges: Vec<Edge>,
    /// Adjacency: for each left vertex, indices into `edges`, sorted by `v`.
    adj: Vec<Vec<u32>>,
}

impl WeightedBipartiteGraph {
    /// Builds a graph from an edge list.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range or a weight is NaN.
    // lint:allow(hot-alloc) — amortized: per-solve workspace/result construction; buffers live for the whole matching call, outside the augmentation loops
    pub fn new<I>(n_left: u32, n_right: u32, edges: I) -> Self
    where
        I: IntoIterator<Item = Edge>,
    {
        let mut list: Vec<Edge> = edges
            .into_iter()
            .inspect(|e| {
                assert!(e.u < n_left, "left endpoint {} out of range", e.u);
                assert!(e.v < n_right, "right endpoint {} out of range", e.v);
                assert!(!e.weight.is_nan(), "edge weight must not be NaN");
            })
            .filter(|e| e.weight > 0.0)
            .collect();
        // Dedup keeping max weight per (u, v).
        list.sort_unstable_by(|a, b| {
            (a.u, a.v)
                .cmp(&(b.u, b.v))
                .then(b.weight.total_cmp(&a.weight))
        });
        list.dedup_by_key(|e| (e.u, e.v));
        let mut adj = vec![Vec::new(); n_left as usize];
        for (idx, e) in list.iter().enumerate() {
            adj[e.u as usize].push(idx as u32);
        }
        WeightedBipartiteGraph {
            n_left,
            n_right,
            edges: list,
            adj,
        }
    }

    /// Convenience constructor from `(u, v, weight)` tuples.
    pub fn from_tuples<I>(n_left: u32, n_right: u32, tuples: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32, f64)>,
    {
        Self::new(
            n_left,
            n_right,
            tuples
                .into_iter()
                .map(|(u, v, weight)| Edge { u, v, weight }),
        )
    }

    /// Number of left vertices.
    #[inline]
    pub fn n_left(&self) -> u32 {
        self.n_left
    }

    /// Number of right vertices.
    #[inline]
    pub fn n_right(&self) -> u32 {
        self.n_right
    }

    /// All (positive-weight) edges, sorted by `(u, v)`.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edges incident to left vertex `u`.
    pub fn edges_of(&self, u: u32) -> impl Iterator<Item = &Edge> + '_ {
        self.adj[u as usize]
            .iter()
            .map(|&i| &self.edges[i as usize])
    }

    /// Weight of edge `(u, v)`, or `0.0` if absent.
    pub fn weight(&self, u: u32, v: u32) -> f64 {
        if u >= self.n_left {
            return 0.0;
        }
        self.edges_of(u)
            .find(|e| e.v == v)
            .map(|e| e.weight)
            .unwrap_or(0.0)
    }

    /// Largest edge weight, or `0.0` for an empty graph.
    pub fn max_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_non_positive_and_dedups_to_max() {
        let g = WeightedBipartiteGraph::from_tuples(
            2,
            2,
            [(0, 0, 1.0), (0, 0, 3.0), (0, 1, 0.0), (1, 1, -2.0)],
        );
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.weight(0, 0), 3.0);
        assert_eq!(g.weight(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn panics_on_bad_endpoint() {
        let _ = WeightedBipartiteGraph::from_tuples(2, 2, [(2, 0, 1.0)]);
    }

    #[test]
    fn adjacency_iteration() {
        let g = WeightedBipartiteGraph::from_tuples(3, 3, [(1, 0, 1.0), (1, 2, 2.0)]);
        let vs: Vec<u32> = g.edges_of(1).map(|e| e.v).collect();
        assert_eq!(vs, vec![0, 2]);
        assert_eq!(g.max_weight(), 2.0);
    }
}
