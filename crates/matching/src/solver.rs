//! Reusable workspace for the exact assignment kernel.
//!
//! [`crate::maximum_weight_matching`] is correct but allocation-heavy when
//! called in a loop: every call re-sorts the edge tuples, rebuilds the
//! adjacency arrays and allocates ~10 scratch vectors before the first
//! Dijkstra phase runs. The Octopus α-search calls the kernel once per
//! candidate duration α, and all candidates of one greedy iteration share
//! the *same* edge topology — only the `g(i, j, α)` weight column differs.
//!
//! [`AssignmentSolver`] splits the kernel accordingly:
//!
//! * [`AssignmentSolver::load_topology`] ingests the shared edge list once,
//!   building a CSR adjacency in buffers that persist across solves;
//! * [`AssignmentSolver::solve_reweighted`] overwrites the weight column in
//!   place and re-runs the solve — zero heap allocation once the buffers
//!   have warmed up;
//! * [`AssignmentSolver::solve`] is the compatibility path: load topology
//!   and weights from a [`WeightedBipartiteGraph`] and solve, still reusing
//!   every buffer.
//!
//! Edges with non-positive weight are *skipped at solve time* rather than
//! filtered at construction, so one fixed topology serves weight columns
//! with different `g > 0` support. The skip reproduces exactly the edge set
//! [`WeightedBipartiteGraph`] would have kept, so results are bit-identical
//! to the one-shot kernel.
//!
//! ## Why every solve starts from canonical duals (no cross-α warm start)
//!
//! The tempting optimization — keep the previous α's dual potentials, repair
//! feasibility, and re-run phases only for vertices whose matched edge went
//! slack — is **unsound** under the determinism contract of this codebase.
//! The matching this algorithm returns is only unique up to ties, and which
//! optimal matching it lands on depends on the Dijkstra pop order, which
//! compares *reduced* distances `d_true + φ(s) − φ(v)`: different starting
//! potentials select different equal-weight optima. (Concretely: on the 2×2
//! complete graph with all weights equal, a cold solve matches the diagonal,
//! while a solver warm-started from weights favoring the anti-diagonal keeps
//! the anti-diagonal — same value, different matching.) Octopus weights are
//! rational hop weights with massive tie classes, so this is the common
//! case, not a corner. A history-dependent `eval(α)` would break the
//! guarantee that pruned-sequential, plain-sequential and threaded α-searches
//! return bit-identical schedules. Every solve therefore re-initializes
//! `φ_l(u) = max(0, max_v w(u, v))`, `φ_r = 0` — an `O(V)` fill, not an
//! allocation — making the result a pure function of `(topology, weights)`.

use crate::WeightedBipartiteGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total order wrapper so `f64` distances can live in a [`BinaryHeap`].
#[derive(Debug, PartialEq)]
pub(crate) struct OrdF64(pub f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

const UNMATCHED: u32 = u32::MAX;

/// A reusable exact maximum-weight bipartite matching solver.
///
/// Owns the CSR topology, Johnson potentials, timestamped Dijkstra scratch
/// and the output buffer; see the module docs for the reuse contract.
///
/// ```
/// use octopus_matching::AssignmentSolver;
/// let mut solver = AssignmentSolver::new();
/// solver.load_topology(2, 2, &[(0, 0), (0, 1), (1, 1)]);
/// // 6.0 alone loses to 5.0 + 4.0.
/// assert_eq!(solver.solve_reweighted(&[5.0, 6.0, 4.0]), &[(0, 0), (1, 1)]);
/// // Same topology, new weight column: no rebuild, no allocation.
/// assert_eq!(solver.solve_reweighted(&[1.0, 10.0, 2.0]), &[(0, 1)]);
/// assert_eq!(solver.last_weight(), 10.0);
/// ```
#[derive(Debug, Default)]
pub struct AssignmentSolver {
    nl: usize,
    nr: usize,
    /// CSR row offsets, length `nl + 1`.
    start: Vec<u32>,
    /// CSR right endpoints, ascending within each row.
    ev: Vec<u32>,
    /// CSR weights, parallel to `ev`; overwritten by each reweight.
    ew: Vec<f64>,
    // Matching state (extended right ids: `0..nr` real, `nr + u` = dummy of u).
    match_l: Vec<u32>,
    match_r: Vec<u32>,
    pot_l: Vec<f64>,
    pot_r: Vec<f64>,
    // Timestamped scratch (avoids O(V) clears per phase).
    dist_l: Vec<f64>,
    dist_r: Vec<f64>,
    pred_r: Vec<u32>,
    stamp_l: Vec<u32>,
    stamp_r: Vec<u32>,
    done_r: Vec<bool>,
    phase: u32,
    heap: BinaryHeap<Reverse<(OrdF64, u32)>>,
    touched_l: Vec<u32>,
    touched_r: Vec<u32>,
    out: Vec<(u32, u32)>,
    last_weight: f64,
}

impl AssignmentSolver {
    /// Creates an empty workspace; buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a fixed edge topology for subsequent
    /// [`AssignmentSolver::solve_reweighted`] calls.
    ///
    /// `edges` must be sorted by `(u, v)` with no duplicate pairs (the order
    /// [`WeightedBipartiteGraph::edges`] and the scheduler's link snapshots
    /// already produce). Weights are supplied per solve, in this exact edge
    /// order.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range; debug-asserts sortedness.
    pub fn load_topology(&mut self, n_left: u32, n_right: u32, edges: &[(u32, u32)]) {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be (u, v)-sorted and unique"
        );
        self.nl = n_left as usize;
        self.nr = n_right as usize;
        self.start.clear();
        self.start.resize(self.nl + 1, 0);
        for &(u, v) in edges {
            assert!(u < n_left, "left endpoint {u} out of range");
            assert!(v < n_right, "right endpoint {v} out of range");
            self.start[u as usize + 1] += 1;
        }
        for i in 0..self.nl {
            self.start[i + 1] += self.start[i];
        }
        self.ev.clear();
        self.ev.extend(edges.iter().map(|&(_, v)| v));
        self.ew.clear();
        self.ew.resize(edges.len(), 0.0);
    }

    /// Number of edges in the loaded topology.
    pub fn num_edges(&self) -> usize {
        self.ev.len()
    }

    /// Solves with a fresh weight column over the loaded topology.
    ///
    /// `weights[i]` is the weight of the `i`-th edge passed to
    /// [`AssignmentSolver::load_topology`]; entries `<= 0.0` disable their
    /// edge for this solve (mirroring [`WeightedBipartiteGraph`]'s dropping
    /// of non-positive edges). Returns the matched `(left, right)` pairs
    /// sorted by left index — bit-identical to
    /// [`crate::maximum_weight_matching`] on the equivalent graph; the
    /// result is a pure function of `(topology, weights)`, independent of
    /// any previous solve (see the module docs on warm starts).
    ///
    /// # Panics
    /// Panics if `weights.len()` differs from the loaded edge count or a
    /// weight is NaN.
    pub fn solve_reweighted(&mut self, weights: &[f64]) -> &[(u32, u32)] {
        assert_eq!(
            weights.len(),
            self.ev.len(),
            "one weight per loaded edge required"
        );
        debug_assert!(
            weights.iter().all(|w| !w.is_nan()),
            "weights must not be NaN"
        );
        self.ew.copy_from_slice(weights);
        self.run()
    }

    /// Compatibility path: loads topology and weights from `g` (reusing all
    /// buffers) and solves. Bit-identical to
    /// [`crate::maximum_weight_matching`], which is now a thin wrapper over
    /// a fresh workspace.
    pub fn solve(&mut self, g: &WeightedBipartiteGraph) -> &[(u32, u32)] {
        self.nl = g.n_left() as usize;
        self.nr = g.n_right() as usize;
        let edges = g.edges();
        self.start.clear();
        self.start.resize(self.nl + 1, 0);
        for e in edges {
            self.start[e.u as usize + 1] += 1;
        }
        for i in 0..self.nl {
            self.start[i + 1] += self.start[i];
        }
        self.ev.clear();
        self.ev.extend(edges.iter().map(|e| e.v));
        self.ew.clear();
        self.ew.extend(edges.iter().map(|e| e.weight));
        self.run()
    }

    /// The matching of the most recent solve (sorted by left index).
    pub fn matching(&self) -> &[(u32, u32)] {
        &self.out
    }

    /// Moves the most recent solve's matching out of the workspace (the
    /// output buffer is left empty and regrows on the next solve).
    pub fn take_matching(&mut self) -> Vec<(u32, u32)> {
        std::mem::take(&mut self.out)
    }

    /// Total weight of the most recent solve's matching, summed in matching
    /// order (bit-identical to [`crate::matching_weight`] on the same
    /// matching).
    pub fn last_weight(&self) -> f64 {
        self.last_weight
    }

    /// Fills `out` with the most recent solve's right-side dual prices
    /// `z_v = max(0, −pot_r[v])` (one entry per real right node; dummy
    /// extensions are dropped). Empty before the first solve.
    ///
    /// The duals satisfy `w(u, v) ≤ pot_l[u] + z_v` on every edge, so for
    /// **any** `z ≥ 0` — these, or arbitrarily stale ones — the re-derived
    /// bound `Σ_u max_v (w(u,v) − z_v)⁺ + Σ_v z_v` upper-bounds every
    /// matching weight of any weight column (weak duality, re-proved from
    /// scratch each use). That is their only sanctioned use: the module
    /// docs explain why they must never seed a subsequent solve.
    pub fn right_duals(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            self.pot_r[..self.nr.min(self.pot_r.len())]
                .iter()
                .map(|&p| (-p).max(0.0)),
        );
    }

    /// Resets per-solve state without touching the topology; O(V) fills over
    /// retained buffers, no allocation after warm-up.
    fn reset_state(&mut self) {
        let nr_ext = self.nr + self.nl;
        self.match_l.clear();
        self.match_l.resize(self.nl, UNMATCHED);
        self.match_r.clear();
        self.match_r.resize(nr_ext, UNMATCHED);
        // Canonical potentials: row maxima left, zero right (see module docs
        // for why these must not be warm-started across weight changes).
        self.pot_l.clear();
        self.pot_l.reserve(self.nl);
        for u in 0..self.nl {
            let row = &self.ew[self.start[u] as usize..self.start[u + 1] as usize];
            self.pot_l.push(row.iter().copied().fold(0.0, f64::max));
        }
        self.pot_r.clear();
        self.pot_r.resize(nr_ext, 0.0);
        self.dist_l.clear();
        self.dist_l.resize(self.nl, f64::INFINITY);
        self.dist_r.clear();
        self.dist_r.resize(nr_ext, f64::INFINITY);
        self.pred_r.clear();
        self.pred_r.resize(nr_ext, u32::MAX);
        self.stamp_l.clear();
        self.stamp_l.resize(self.nl, 0);
        self.stamp_r.clear();
        self.stamp_r.resize(nr_ext, 0);
        self.done_r.clear();
        self.done_r.resize(nr_ext, false);
        self.phase = 0;
        self.heap.clear();
    }

    /// The successive-shortest-path assignment solve over the loaded CSR.
    ///
    /// Identical, operation for operation, to the historical one-shot
    /// kernel: left vertices are inserted in index order; each insertion
    /// runs one Dijkstra over alternating paths in reduced costs (non-
    /// positive-weight edges skipped) and augments to the cheapest free
    /// extended-right vertex; Johnson potentials keep reduced costs
    /// non-negative.
    fn run(&mut self) -> &[(u32, u32)] {
        self.reset_state();
        let nl = self.nl;
        let nr = self.nr;

        for s in 0..nl as u32 {
            // A vertex with no positive edge stays unmatched (its potential
            // is exactly 0.0 iff every incident weight is <= 0).
            if self.pot_l[s as usize] <= 0.0 {
                continue;
            }
            self.phase += 1;
            let phase = self.phase;
            self.heap.clear();
            self.touched_l.clear();
            self.touched_r.clear();

            // Seed with s at distance 0.
            self.dist_l[s as usize] = 0.0;
            self.stamp_l[s as usize] = phase;
            self.touched_l.push(s);
            self.relax_left(s, 0.0, phase);

            // Dijkstra until a free (extended) right vertex is finalized.
            let mut target: Option<(u32, f64)> = None;
            while let Some(Reverse((OrdF64(d), v))) = self.heap.pop() {
                let vi = v as usize;
                if self.stamp_r[vi] != phase || self.done_r[vi] || d > self.dist_r[vi] {
                    continue; // stale entry
                }
                self.done_r[vi] = true;
                let u = self.match_r[vi];
                if u == UNMATCHED {
                    target = Some((v, d));
                    break;
                }
                // Traverse the matched edge backwards at reduced cost 0.
                let ui = u as usize;
                if self.stamp_l[ui] != phase || d < self.dist_l[ui] {
                    self.stamp_l[ui] = phase;
                    self.dist_l[ui] = d;
                    self.touched_l.push(u);
                    self.relax_left(u, d, phase);
                }
            }

            // The dummy sink guarantees an augmenting path for every seeded
            // vertex; if the heap nonetheless drained without finalizing a
            // free right vertex, leave `s` unmatched rather than abort the
            // whole solve.
            let Some((t, big_d)) = target else {
                for &v in &self.touched_r {
                    self.done_r[v as usize] = false;
                }
                continue;
            };

            // Johnson potential update: every finalized vertex x with
            // d(x) <= D gets pot[x] -= (D - d(x)); this keeps reduced costs
            // >= 0 and makes the augmenting path tight.
            for &u in &self.touched_l {
                let ui = u as usize;
                if self.dist_l[ui] <= big_d {
                    self.pot_l[ui] -= big_d - self.dist_l[ui];
                }
            }
            for &v in &self.touched_r {
                let vi = v as usize;
                if self.done_r[vi] && self.dist_r[vi] <= big_d {
                    self.pot_r[vi] -= big_d - self.dist_r[vi];
                }
            }
            // Reset done flags for touched right vertices (stamps handle
            // dist).
            for &v in &self.touched_r {
                self.done_r[v as usize] = false;
            }

            // Augment: walk predecessor pointers from the target back to s.
            let mut v_cur = t;
            loop {
                let u = self.pred_r[v_cur as usize];
                let prev_v = self.match_l[u as usize];
                self.match_l[u as usize] = v_cur;
                self.match_r[v_cur as usize] = u;
                if prev_v == UNMATCHED {
                    break;
                }
                v_cur = prev_v;
            }
        }

        self.out.clear();
        self.last_weight = 0.0;
        for u in 0..nl {
            let v = self.match_l[u];
            if v != UNMATCHED && (v as usize) < nr {
                self.out.push((u as u32, v));
                // Row scan for the matched edge's weight (rows are short and
                // v-sorted); summed in output order for bit-parity with
                // `matching_weight`.
                let (lo, hi) = (self.start[u] as usize, self.start[u + 1] as usize);
                let idx = lo + self.ev[lo..hi].partition_point(|&x| x < v);
                self.last_weight += self.ew[idx];
            }
        }
        // match_l is filled in left order, so `out` is already sorted.
        &self.out
    }

    /// Relaxes all positive-weight edges of left vertex `u` (plus its dummy
    /// sink), given its finalized distance `d_u`.
    fn relax_left(&mut self, u: u32, d_u: f64, phase: u32) {
        let ui = u as usize;
        let (lo, hi) = (self.start[ui] as usize, self.start[ui + 1] as usize);
        for idx in lo..hi {
            let w = self.ew[idx];
            if w <= 0.0 {
                continue; // disabled for this weight column
            }
            let v = self.ev[idx] as usize;
            let rc = -w + self.pot_l[ui] - self.pot_r[v];
            self.relax(u, v, rc, d_u, phase);
        }
        // Dummy sink of u: cost 0 edge.
        let dv = self.nr + ui;
        let rc = self.pot_l[ui] - self.pot_r[dv];
        self.relax(u, dv, rc, d_u, phase);
    }

    #[inline]
    fn relax(&mut self, u: u32, v: usize, rc: f64, d_u: f64, phase: u32) {
        debug_assert!(rc >= -1e-9, "reduced cost must stay non-negative: {rc}");
        let nd = d_u + rc.max(0.0);
        if self.stamp_r[v] != phase {
            self.stamp_r[v] = phase;
            self.done_r[v] = false;
            self.dist_r[v] = f64::INFINITY;
            self.touched_r.push(v as u32);
        }
        if !self.done_r[v] && nd < self.dist_r[v] {
            self.dist_r[v] = nd;
            self.pred_r[v] = u;
            self.heap.push(Reverse((OrdF64(nd), v as u32)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute, matching_weight, maximum_weight_matching};

    #[test]
    fn reweighted_matches_cold_solve_on_fixed_topology() {
        let edges = vec![(0, 0), (0, 1), (1, 0), (1, 2), (2, 1), (2, 2)];
        let mut solver = AssignmentSolver::new();
        solver.load_topology(3, 3, &edges);
        let columns: Vec<Vec<f64>> = vec![
            vec![7.0, 8.0, 9.0, 2.0, 3.0, 4.0],
            vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            vec![0.0, 5.0, -1.0, 2.0, 0.0, 8.0],
            vec![7.0, 8.0, 9.0, 2.0, 3.0, 4.0], // revisit an earlier column
        ];
        for col in &columns {
            let warm = solver.solve_reweighted(col).to_vec();
            let tuples: Vec<(u32, u32, f64)> = edges
                .iter()
                .zip(col)
                .map(|(&(u, v), &w)| (u, v, w))
                .collect();
            let g = WeightedBipartiteGraph::from_tuples(3, 3, tuples);
            assert_eq!(warm, maximum_weight_matching(&g), "column {col:?}");
            assert!((solver.last_weight() - matching_weight(&g, &warm)).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_matches_one_shot_kernel() {
        let g = WeightedBipartiteGraph::from_tuples(
            4,
            2,
            [
                (0, 0, 3.0),
                (1, 0, 4.0),
                (2, 1, 1.0),
                (3, 1, 2.0),
                (0, 1, 5.0),
            ],
        );
        let mut solver = AssignmentSolver::new();
        assert_eq!(solver.solve(&g), maximum_weight_matching(&g).as_slice());
        assert!((solver.last_weight() - matching_weight(&g, solver.matching())).abs() < 1e-12);
        // Reuse across differently-shaped graphs.
        let g2 = WeightedBipartiteGraph::from_tuples(2, 2, [(0, 0, 5.0), (0, 1, 6.0), (1, 1, 4.0)]);
        assert_eq!(solver.solve(&g2), maximum_weight_matching(&g2).as_slice());
    }

    #[test]
    fn nonpositive_weights_disable_edges() {
        let mut solver = AssignmentSolver::new();
        solver.load_topology(2, 2, &[(0, 0), (0, 1), (1, 1)]);
        assert_eq!(
            solver.solve_reweighted(&[0.0, -3.0, 0.0]),
            &[] as &[(u32, u32)]
        );
        assert_eq!(solver.last_weight(), 0.0);
        assert_eq!(solver.solve_reweighted(&[0.0, 2.0, 0.0]), &[(0, 1)]);
    }

    #[test]
    fn empty_topology() {
        let mut solver = AssignmentSolver::new();
        solver.load_topology(3, 3, &[]);
        assert!(solver.solve_reweighted(&[]).is_empty());
    }

    #[test]
    fn randomized_reweight_agrees_with_brute_force() {
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut solver = AssignmentSolver::new();
        for trial in 0..200 {
            let nl = 1 + (next() % 5) as u32;
            let nr = 1 + (next() % 5) as u32;
            let mut edges: Vec<(u32, u32)> = (0..(next() % 12) as usize)
                .map(|_| (next() as u32 % nl, next() as u32 % nr))
                .collect();
            edges.sort_unstable();
            edges.dedup();
            solver.load_topology(nl, nr, &edges);
            for _ in 0..4 {
                let col: Vec<f64> = edges
                    .iter()
                    .map(|_| ((next() % 100) as f64) - 20.0)
                    .collect();
                let got = solver.solve_reweighted(&col).to_vec();
                let tuples: Vec<(u32, u32, f64)> = edges
                    .iter()
                    .zip(&col)
                    .map(|(&(u, v), &w)| (u, v, w))
                    .collect();
                let g = WeightedBipartiteGraph::from_tuples(nl, nr, tuples);
                let want = brute::max_weight_matching_brute(&g);
                assert!(
                    (matching_weight(&g, &got) - want).abs() < 1e-6,
                    "trial {trial}: got weight {}, brute {want}",
                    matching_weight(&g, &got)
                );
                assert_eq!(got, maximum_weight_matching(&g), "trial {trial}");
            }
        }
    }
}
