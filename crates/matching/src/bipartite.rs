//! Exact maximum-weight bipartite matching on sparse graphs.
//!
//! Algorithm: the incremental Hungarian method in its Dijkstra-with-potentials
//! (Jonker–Volgenant) form. We add, for every left vertex `u`, a private
//! *dummy* right vertex reachable at cost 0, turning maximum-weight matching
//! into maximum-weight perfect-on-left assignment (matching the dummy ≡
//! leaving `u` unmatched). Left vertices are then inserted one at a time;
//! each insertion runs one Dijkstra over alternating paths in reduced costs
//! and augments along the cheapest path to a free right vertex. Johnson
//! potentials keep reduced costs non-negative, so each phase is
//! `O((E + V) log V)` and the whole algorithm `O(n_left · E log V)`.
//!
//! This plays the role of Google OR-tools' linear-assignment solver in the
//! paper's experiments (§8 "Execution Time"): an exact kernel whose wall-clock
//! cost motivates the greedy Octopus-G variant.

use crate::WeightedBipartiteGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total order wrapper so `f64` distances can live in a [`BinaryHeap`].
#[derive(PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Computes an exact maximum-weight matching of `g`.
///
/// Returns the matched `(left, right)` pairs sorted by left index. Only
/// positive-weight edges are ever matched (zero/negative edges are dropped by
/// [`WeightedBipartiteGraph`]), so the returned matching also maximizes
/// weight among matchings of every cardinality — it is the global
/// maximum-weight matching, not a maximum-cardinality one.
///
/// ```
/// use octopus_matching::{maximum_weight_matching, WeightedBipartiteGraph};
/// let g = WeightedBipartiteGraph::from_tuples(
///     2, 2,
///     [(0, 0, 5.0), (0, 1, 6.0), (1, 1, 4.0)],
/// );
/// // 6.0 alone loses to 5.0 + 4.0.
/// assert_eq!(maximum_weight_matching(&g), vec![(0, 0), (1, 1)]);
/// ```
pub fn maximum_weight_matching(g: &WeightedBipartiteGraph) -> Vec<(u32, u32)> {
    let nl = g.n_left() as usize;
    let nr = g.n_right() as usize;
    // Right vertex ids: 0..nr are real, nr + u is left-u's dummy sink.
    let nr_ext = nr + nl;

    let mut match_l: Vec<Option<u32>> = vec![None; nl]; // left -> extended right
    let mut match_r: Vec<Option<u32>> = vec![None; nr_ext]; // extended right -> left

    // Potentials; invariant: cost(u,v) + pot_l[u] - pot_r[v] >= 0 for every
    // edge, with equality on matched edges (cost = -weight; dummy cost = 0).
    let mut pot_l: Vec<f64> = (0..nl as u32)
        .map(|u| g.edges_of(u).map(|e| e.weight).fold(0.0, f64::max))
        .collect();
    let mut pot_r: Vec<f64> = vec![0.0; nr_ext];

    // Timestamped scratch (avoids O(V) clears per phase).
    let mut dist_r: Vec<f64> = vec![f64::INFINITY; nr_ext];
    let mut dist_l: Vec<f64> = vec![f64::INFINITY; nl];
    let mut pred_r: Vec<u32> = vec![u32::MAX; nr_ext];
    let mut stamp_r: Vec<u32> = vec![0; nr_ext];
    let mut stamp_l: Vec<u32> = vec![0; nl];
    let mut done_r: Vec<bool> = vec![false; nr_ext];
    let mut phase: u32 = 0;

    let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
    // Vertices touched this phase, for the potential update.
    let mut touched_l: Vec<u32> = Vec::new();
    let mut touched_r: Vec<u32> = Vec::new();

    for s in 0..nl as u32 {
        if g.edges_of(s).next().is_none() {
            continue; // isolated: stays unmatched
        }
        phase += 1;
        heap.clear();
        touched_l.clear();
        touched_r.clear();

        // Seed with s at distance 0.
        dist_l[s as usize] = 0.0;
        stamp_l[s as usize] = phase;
        touched_l.push(s);
        relax_left(
            g,
            s,
            0.0,
            &pot_l,
            &pot_r,
            &mut dist_r,
            &mut pred_r,
            &mut stamp_r,
            &mut done_r,
            phase,
            &mut heap,
            &mut touched_r,
            nr,
        );

        // Dijkstra until a free (extended) right vertex is finalized.
        let mut target: Option<(u32, f64)> = None;
        while let Some(Reverse((OrdF64(d), v))) = heap.pop() {
            let vi = v as usize;
            if stamp_r[vi] != phase || done_r[vi] || d > dist_r[vi] {
                continue; // stale entry
            }
            done_r[vi] = true;
            match match_r[vi] {
                None => {
                    target = Some((v, d));
                    break;
                }
                Some(u) => {
                    // Traverse the matched edge backwards at reduced cost 0.
                    let ui = u as usize;
                    if stamp_l[ui] != phase || d < dist_l[ui] {
                        stamp_l[ui] = phase;
                        dist_l[ui] = d;
                        touched_l.push(u);
                        relax_left(
                            g,
                            u,
                            d,
                            &pot_l,
                            &pot_r,
                            &mut dist_r,
                            &mut pred_r,
                            &mut stamp_r,
                            &mut done_r,
                            phase,
                            &mut heap,
                            &mut touched_r,
                            nr,
                        );
                    }
                }
            }
        }

        let (t, big_d) = target.expect("dummy sink guarantees an augmenting path");

        // Johnson potential update: every finalized vertex x with d(x) <= D
        // gets pot[x] -= (D - d(x)); this keeps reduced costs >= 0 and makes
        // the augmenting path tight.
        for &u in &touched_l {
            let ui = u as usize;
            if dist_l[ui] <= big_d {
                pot_l[ui] -= big_d - dist_l[ui];
            }
        }
        for &v in &touched_r {
            let vi = v as usize;
            if done_r[vi] && dist_r[vi] <= big_d {
                pot_r[vi] -= big_d - dist_r[vi];
            }
        }
        // Reset done flags for touched right vertices (stamps handle dist).
        for &v in &touched_r {
            done_r[v as usize] = false;
        }

        // Augment: walk predecessor pointers from the target back to s.
        let mut v_cur = t;
        loop {
            let u = pred_r[v_cur as usize];
            let prev_v = match_l[u as usize];
            match_l[u as usize] = Some(v_cur);
            match_r[v_cur as usize] = Some(u);
            match prev_v {
                Some(pv) => v_cur = pv,
                None => break,
            }
        }
    }

    let mut out: Vec<(u32, u32)> = match_l
        .iter()
        .enumerate()
        .filter_map(|(u, &mv)| match mv {
            Some(v) if (v as usize) < nr => Some((u as u32, v)),
            _ => None,
        })
        .collect();
    out.sort_unstable();
    out
}

/// Relaxes all edges of left vertex `u` (including its dummy sink), given its
/// finalized distance `d_u`.
#[allow(clippy::too_many_arguments)]
fn relax_left(
    g: &WeightedBipartiteGraph,
    u: u32,
    d_u: f64,
    pot_l: &[f64],
    pot_r: &[f64],
    dist_r: &mut [f64],
    pred_r: &mut [u32],
    stamp_r: &mut [u32],
    done_r: &mut [bool],
    phase: u32,
    heap: &mut BinaryHeap<Reverse<(OrdF64, u32)>>,
    touched_r: &mut Vec<u32>,
    nr: usize,
) {
    let ui = u as usize;
    let mut relax = |v: usize, rc: f64, dist_r: &mut [f64], pred_r: &mut [u32]| {
        debug_assert!(rc >= -1e-9, "reduced cost must stay non-negative: {rc}");
        let nd = d_u + rc.max(0.0);
        if stamp_r[v] != phase {
            stamp_r[v] = phase;
            done_r[v] = false;
            dist_r[v] = f64::INFINITY;
            touched_r.push(v as u32);
        }
        if !done_r[v] && nd < dist_r[v] {
            dist_r[v] = nd;
            pred_r[v] = u;
            heap.push(Reverse((OrdF64(nd), v as u32)));
        }
    };
    for e in g.edges_of(u) {
        let rc = -e.weight + pot_l[ui] - pot_r[e.v as usize];
        relax(e.v as usize, rc, dist_r, pred_r);
    }
    // Dummy sink of u: cost 0 edge.
    let dv = nr + ui;
    let rc = pot_l[ui] - pot_r[dv];
    relax(dv, rc, dist_r, pred_r);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute, matching_weight, WeightedBipartiteGraph};

    fn weight_of(g: &WeightedBipartiteGraph, m: &[(u32, u32)]) -> f64 {
        matching_weight(g, m)
    }

    fn assert_is_matching(m: &[(u32, u32)]) {
        let mut ls = std::collections::HashSet::new();
        let mut rs = std::collections::HashSet::new();
        for &(u, v) in m {
            assert!(ls.insert(u), "left {u} matched twice");
            assert!(rs.insert(v), "right {v} matched twice");
        }
    }

    #[test]
    fn empty_graph() {
        let g = WeightedBipartiteGraph::from_tuples(3, 3, []);
        assert!(maximum_weight_matching(&g).is_empty());
    }

    #[test]
    fn single_edge() {
        let g = WeightedBipartiteGraph::from_tuples(2, 2, [(1, 0, 2.5)]);
        assert_eq!(maximum_weight_matching(&g), vec![(1, 0)]);
    }

    #[test]
    fn prefers_two_small_over_one_big() {
        let g = WeightedBipartiteGraph::from_tuples(2, 2, [(0, 0, 5.0), (0, 1, 6.0), (1, 1, 4.0)]);
        let m = maximum_weight_matching(&g);
        assert_eq!(m, vec![(0, 0), (1, 1)]);
        assert_eq!(weight_of(&g, &m), 9.0);
    }

    #[test]
    fn prefers_one_big_over_two_small() {
        let g = WeightedBipartiteGraph::from_tuples(2, 2, [(0, 0, 1.0), (0, 1, 10.0), (1, 1, 2.0)]);
        let m = maximum_weight_matching(&g);
        assert_eq!(m, vec![(0, 1)]);
    }

    #[test]
    fn long_augmenting_chain() {
        // Chain forcing repeated re-matching: left i connects to right i and
        // i+1; optimum shifts everything.
        let n = 6u32;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, i, 1.0));
            if i + 1 < n {
                edges.push((i, i + 1, 1.1));
            }
        }
        let g = WeightedBipartiteGraph::from_tuples(n, n, edges);
        let m = maximum_weight_matching(&g);
        assert_is_matching(&m);
        let bf = brute::max_weight_matching_brute(&g);
        assert!((weight_of(&g, &m) - bf).abs() < 1e-9);
    }

    #[test]
    fn rectangular_graphs() {
        let g = WeightedBipartiteGraph::from_tuples(
            4,
            2,
            [
                (0, 0, 3.0),
                (1, 0, 4.0),
                (2, 1, 1.0),
                (3, 1, 2.0),
                (0, 1, 5.0),
            ],
        );
        let m = maximum_weight_matching(&g);
        assert_is_matching(&m);
        assert!((weight_of(&g, &m) - brute::max_weight_matching_brute(&g)).abs() < 1e-9);
    }

    #[test]
    fn matches_brute_force_on_many_random_graphs() {
        // Deterministic pseudo-random edge set, no rand dependency needed.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..500 {
            let nl = 1 + (next() % 6) as u32;
            let nr = 1 + (next() % 6) as u32;
            let ne = (next() % 14) as usize;
            let edges: Vec<(u32, u32, f64)> = (0..ne)
                .map(|_| {
                    (
                        next() as u32 % nl,
                        next() as u32 % nr,
                        ((next() % 1000) as f64) / 10.0,
                    )
                })
                .collect();
            let g = WeightedBipartiteGraph::from_tuples(nl, nr, edges);
            let m = maximum_weight_matching(&g);
            assert_is_matching(&m);
            let got = weight_of(&g, &m);
            let want = brute::max_weight_matching_brute(&g);
            assert!(
                (got - want).abs() < 1e-6,
                "trial {trial}: got {got}, brute {want}, graph {g:?}"
            );
        }
    }

    #[test]
    fn integer_weights_give_exact_results() {
        let g = WeightedBipartiteGraph::from_tuples(
            3,
            3,
            [
                (0, 0, 7.0),
                (0, 1, 8.0),
                (1, 0, 9.0),
                (1, 2, 2.0),
                (2, 1, 3.0),
                (2, 2, 4.0),
            ],
        );
        let m = maximum_weight_matching(&g);
        assert_eq!(weight_of(&g, &m), 9.0 + 8.0 + 4.0);
    }
}
