//! Exact maximum-weight bipartite matching on sparse graphs.
//!
//! Algorithm: the incremental Hungarian method in its Dijkstra-with-potentials
//! (Jonker–Volgenant) form. We add, for every left vertex `u`, a private
//! *dummy* right vertex reachable at cost 0, turning maximum-weight matching
//! into maximum-weight perfect-on-left assignment (matching the dummy ≡
//! leaving `u` unmatched). Left vertices are then inserted one at a time;
//! each insertion runs one Dijkstra over alternating paths in reduced costs
//! and augments along the cheapest path to a free right vertex. Johnson
//! potentials keep reduced costs non-negative, so each phase is
//! `O((E + V) log V)` and the whole algorithm `O(n_left · E log V)`.
//!
//! This plays the role of Google OR-tools' linear-assignment solver in the
//! paper's experiments (§8 "Execution Time"): an exact kernel whose wall-clock
//! cost motivates the greedy Octopus-G variant.
//!
//! The implementation lives in [`crate::AssignmentSolver`], a reusable
//! workspace that amortizes the CSR build and scratch allocations across
//! solves; this entry point is a thin wrapper constructing a fresh workspace
//! per call. Hot loops should hold an [`crate::AssignmentSolver`] instead.

use crate::{AssignmentSolver, WeightedBipartiteGraph};

/// Computes an exact maximum-weight matching of `g`.
///
/// Returns the matched `(left, right)` pairs sorted by left index. Only
/// positive-weight edges are ever matched (zero/negative edges are dropped by
/// [`WeightedBipartiteGraph`]), so the returned matching also maximizes
/// weight among matchings of every cardinality — it is the global
/// maximum-weight matching, not a maximum-cardinality one.
///
/// ```
/// use octopus_matching::{maximum_weight_matching, WeightedBipartiteGraph};
/// let g = WeightedBipartiteGraph::from_tuples(
///     2, 2,
///     [(0, 0, 5.0), (0, 1, 6.0), (1, 1, 4.0)],
/// );
/// // 6.0 alone loses to 5.0 + 4.0.
/// assert_eq!(maximum_weight_matching(&g), vec![(0, 0), (1, 1)]);
/// ```
pub fn maximum_weight_matching(g: &WeightedBipartiteGraph) -> Vec<(u32, u32)> {
    let mut solver = AssignmentSolver::new();
    solver.solve(g);
    solver.take_matching()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute, matching_weight, WeightedBipartiteGraph};

    fn weight_of(g: &WeightedBipartiteGraph, m: &[(u32, u32)]) -> f64 {
        matching_weight(g, m)
    }

    fn assert_is_matching(m: &[(u32, u32)]) {
        let mut ls = std::collections::HashSet::new();
        let mut rs = std::collections::HashSet::new();
        for &(u, v) in m {
            assert!(ls.insert(u), "left {u} matched twice");
            assert!(rs.insert(v), "right {v} matched twice");
        }
    }

    #[test]
    fn empty_graph() {
        let g = WeightedBipartiteGraph::from_tuples(3, 3, []);
        assert!(maximum_weight_matching(&g).is_empty());
    }

    #[test]
    fn single_edge() {
        let g = WeightedBipartiteGraph::from_tuples(2, 2, [(1, 0, 2.5)]);
        assert_eq!(maximum_weight_matching(&g), vec![(1, 0)]);
    }

    #[test]
    fn prefers_two_small_over_one_big() {
        let g = WeightedBipartiteGraph::from_tuples(2, 2, [(0, 0, 5.0), (0, 1, 6.0), (1, 1, 4.0)]);
        let m = maximum_weight_matching(&g);
        assert_eq!(m, vec![(0, 0), (1, 1)]);
        assert_eq!(weight_of(&g, &m), 9.0);
    }

    #[test]
    fn prefers_one_big_over_two_small() {
        let g = WeightedBipartiteGraph::from_tuples(2, 2, [(0, 0, 1.0), (0, 1, 10.0), (1, 1, 2.0)]);
        let m = maximum_weight_matching(&g);
        assert_eq!(m, vec![(0, 1)]);
    }

    #[test]
    fn long_augmenting_chain() {
        // Chain forcing repeated re-matching: left i connects to right i and
        // i+1; optimum shifts everything.
        let n = 6u32;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, i, 1.0));
            if i + 1 < n {
                edges.push((i, i + 1, 1.1));
            }
        }
        let g = WeightedBipartiteGraph::from_tuples(n, n, edges);
        let m = maximum_weight_matching(&g);
        assert_is_matching(&m);
        let bf = brute::max_weight_matching_brute(&g);
        assert!((weight_of(&g, &m) - bf).abs() < 1e-9);
    }

    #[test]
    fn rectangular_graphs() {
        let g = WeightedBipartiteGraph::from_tuples(
            4,
            2,
            [
                (0, 0, 3.0),
                (1, 0, 4.0),
                (2, 1, 1.0),
                (3, 1, 2.0),
                (0, 1, 5.0),
            ],
        );
        let m = maximum_weight_matching(&g);
        assert_is_matching(&m);
        assert!((weight_of(&g, &m) - brute::max_weight_matching_brute(&g)).abs() < 1e-9);
    }

    #[test]
    fn matches_brute_force_on_many_random_graphs() {
        // Deterministic pseudo-random edge set, no rand dependency needed.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..500 {
            let nl = 1 + (next() % 6) as u32;
            let nr = 1 + (next() % 6) as u32;
            let ne = (next() % 14) as usize;
            let edges: Vec<(u32, u32, f64)> = (0..ne)
                .map(|_| {
                    (
                        next() as u32 % nl,
                        next() as u32 % nr,
                        ((next() % 1000) as f64) / 10.0,
                    )
                })
                .collect();
            let g = WeightedBipartiteGraph::from_tuples(nl, nr, edges);
            let m = maximum_weight_matching(&g);
            assert_is_matching(&m);
            let got = weight_of(&g, &m);
            let want = brute::max_weight_matching_brute(&g);
            assert!(
                (got - want).abs() < 1e-6,
                "trial {trial}: got {got}, brute {want}, graph {g:?}"
            );
        }
    }

    #[test]
    fn integer_weights_give_exact_results() {
        let g = WeightedBipartiteGraph::from_tuples(
            3,
            3,
            [
                (0, 0, 7.0),
                (0, 1, 8.0),
                (1, 0, 9.0),
                (1, 2, 2.0),
                (2, 1, 3.0),
                (2, 2, 4.0),
            ],
        );
        let m = maximum_weight_matching(&g);
        assert_eq!(weight_of(&g, &m), 9.0 + 8.0 + 4.0);
    }
}
