//! # octopus-matching
//!
//! Matching-algorithm substrate for the Octopus multihop circuit scheduler
//! (CoNEXT 2020). Every scheduler iteration reduces "pick the best
//! configuration for a given α" to a **maximum-weight bipartite matching** on
//! the network graph with `g(i,j,α)` edge weights; the practical variants of
//! the paper swap in cheaper approximate matchings. This crate implements all
//! of those kernels from scratch, on plain index graphs so it has no
//! dependencies:
//!
//! * [`maximum_weight_matching`] — exact max-weight bipartite matching on a
//!   sparse graph via successive shortest augmenting paths with Johnson
//!   potentials (the role Google OR-tools' linear assignment plays in the
//!   paper's experiments).
//! * [`AssignmentSolver`] — the same exact kernel as a reusable workspace:
//!   the CSR topology, potentials and Dijkstra scratch persist across solves,
//!   and `solve_reweighted` re-solves a fixed topology under a new weight
//!   column without allocating (the α-search hot path).
//! * [`AuctionSolver`] — an alternative exact kernel: forward auction with
//!   ε-scaling over integer-scaled prices, whose bidding pass parallelizes
//!   across bidders deterministically (same workspace surface as
//!   [`AssignmentSolver`]; see `auction.rs` for the resolution caveat).
//! * [`greedy::greedy_matching`] — the classic sort-by-weight greedy,
//!   a ½-approximation (Avis 1983), used by **Octopus-G**.
//! * [`greedy::bucket_greedy_matching`] — the same greedy in linear time via
//!   counting sort, exploiting the paper's observation that edge weights are
//!   integral and bounded (§8 "Execution Time").
//! * [`general::greedy_general_matching`] — greedy matching on *general*
//!   (non-bipartite) graphs for the §7 bidirectional-link generalization.
//! * [`hopcroft_karp`] — maximum-cardinality bipartite matching, a substrate
//!   for the Birkhoff–von-Neumann-style decomposition.
//! * [`bvn`] — greedy BvN-style decomposition of a demand matrix into
//!   `(matching, duration)` pairs, as used by Solstice-style schedulers.
//! * [`brute`] — exponential-time exact reference implementations used by the
//!   property-test suites of downstream crates.
//!
//! Graphs are described by [`WeightedBipartiteGraph`]; matchings are returned
//! as sorted `(left, right)` index pairs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blossom;
pub mod brute;
pub mod bvn;
pub mod general;
pub mod greedy;
pub mod hopcroft_karp;

mod auction;
mod bipartite;
mod graph;
mod solver;

pub use auction::{AuctionSolver, AuctionWorkspace};
pub use bipartite::maximum_weight_matching;
pub use graph::{Edge, WeightedBipartiteGraph};
pub use solver::AssignmentSolver;

/// Total weight of a matching (list of `(left, right)` pairs) in `g`.
///
/// Pairs that are not edges of `g` contribute zero.
pub fn matching_weight(g: &WeightedBipartiteGraph, matching: &[(u32, u32)]) -> f64 {
    matching.iter().map(|&(u, v)| g.weight(u, v)).sum()
}
