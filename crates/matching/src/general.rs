//! Greedy matching on **general** (non-bipartite) weighted graphs.
//!
//! The §7 generalization to bidirectional (full-duplex) links needs matchings
//! of a general undirected graph. The paper invokes Gabow–Tarjan's exact
//! algorithm; as documented in DESIGN.md we substitute the classic greedy
//! ½-approximation (the same trade the paper itself makes for Octopus-G on
//! the bipartite side), keeping the matcher pluggable.

/// An undirected weighted edge `{a, b}` with weight `w`.
pub type GeneralEdge = (u32, u32, f64);

/// Greedy maximum-weight matching on a general graph over `n` vertices:
/// repeatedly take the heaviest edge with both endpoints free.
///
/// Guarantees at least half the weight of the true maximum-weight matching
/// (Avis 1983). Ties are broken by normalized `(min, max)` endpoint pair, so
/// the result is deterministic. Self-loops and non-positive weights are
/// ignored. Returns edges as `(min, max)` pairs sorted ascending.
// lint:allow(hot-alloc) — amortized: per-solve workspace/result construction; buffers live for the whole matching call, outside the augmentation loops
pub fn greedy_general_matching(n: u32, edges: &[GeneralEdge]) -> Vec<(u32, u32)> {
    let mut list: Vec<(u32, u32, f64)> = edges
        .iter()
        .filter(|&&(a, b, w)| a != b && w > 0.0 && a < n && b < n)
        .map(|&(a, b, w)| if a < b { (a, b, w) } else { (b, a, w) })
        .collect();
    list.sort_unstable_by(|x, y| y.2.total_cmp(&x.2).then((x.0, x.1).cmp(&(y.0, y.1))));
    let mut used = vec![false; n as usize];
    let mut out = Vec::new();
    for (a, b, _) in list {
        if !used[a as usize] && !used[b as usize] {
            used[a as usize] = true;
            used[b as usize] = true;
            out.push((a, b));
        }
    }
    out.sort_unstable();
    out
}

/// Exact maximum-weight matching on a general graph by exhaustive search —
/// exponential, for tests only.
///
/// # Panics
/// Panics if the graph has more than 24 positive edges.
pub fn general_matching_brute(n: u32, edges: &[GeneralEdge]) -> f64 {
    let list: Vec<(u32, u32, f64)> = edges
        .iter()
        .filter(|&&(a, b, w)| a != b && w > 0.0 && a < n && b < n)
        .copied()
        .collect();
    assert!(list.len() <= 24, "brute force limited to 24 edges");
    fn rec(list: &[(u32, u32, f64)], idx: usize, used: &mut [bool]) -> f64 {
        if idx == list.len() {
            return 0.0;
        }
        let skip = rec(list, idx + 1, used);
        let (a, b, w) = list[idx];
        if !used[a as usize] && !used[b as usize] {
            used[a as usize] = true;
            used[b as usize] = true;
            let take = w + rec(list, idx + 1, used);
            used[a as usize] = false;
            used[b as usize] = false;
            skip.max(take)
        } else {
            skip
        }
    }
    rec(&list, 0, &mut vec![false; n as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weight_of(edges: &[GeneralEdge], m: &[(u32, u32)]) -> f64 {
        m.iter()
            .map(|&(a, b)| {
                edges
                    .iter()
                    .filter(|&&(x, y, _)| (x, y) == (a, b) || (x, y) == (b, a))
                    .map(|&(_, _, w)| w)
                    .fold(0.0, f64::max)
            })
            .sum()
    }

    #[test]
    fn triangle_takes_heaviest_edge() {
        let edges = [(0, 1, 3.0), (1, 2, 2.0), (0, 2, 1.0)];
        let m = greedy_general_matching(3, &edges);
        assert_eq!(m, vec![(0, 1)]);
    }

    #[test]
    fn path_graph_alternation() {
        // Path 0-1-2-3 with middle edge heaviest: greedy takes middle only,
        // exact takes the two outer edges when they sum higher.
        let edges = [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 2.0)];
        let m = greedy_general_matching(4, &edges);
        assert_eq!(m, vec![(1, 2)]);
        assert_eq!(general_matching_brute(4, &edges), 4.0);
        // Half-approximation holds: 3 >= 4/2.
        assert!(weight_of(&edges, &m) * 2.0 >= 4.0);
    }

    #[test]
    fn half_approximation_random() {
        let mut state = 99u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..300 {
            let n = 2 + (next() % 7) as u32;
            let ne = (next() % 10) as usize;
            let edges: Vec<GeneralEdge> = (0..ne)
                .map(|_| {
                    (
                        next() as u32 % n,
                        next() as u32 % n,
                        (1 + next() % 30) as f64,
                    )
                })
                .collect();
            let m = greedy_general_matching(n, &edges);
            // validity: node-disjoint
            let mut used = std::collections::HashSet::new();
            for &(a, b) in &m {
                assert!(used.insert(a));
                assert!(used.insert(b));
            }
            let got = weight_of(&edges, &m);
            let opt = general_matching_brute(n, &edges);
            assert!(got * 2.0 + 1e-9 >= opt, "greedy {got} vs opt {opt}");
        }
    }

    #[test]
    fn ignores_self_loops_and_nonpositive() {
        let edges = [(1, 1, 5.0), (0, 1, -2.0), (0, 1, 0.0)];
        assert!(greedy_general_matching(2, &edges).is_empty());
    }
}
