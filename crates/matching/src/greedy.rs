//! Greedy approximate matchings — the engine of **Octopus-G**.
//!
//! The classic greedy ("repeatedly take the heaviest edge whose endpoints are
//! both free") is a ½-approximation to maximum-weight matching (Avis 1983).
//! The paper's §8 observes that in the Octopus setting edge weights are
//! integral (after scaling packet weights by `lcm(1..=𝒟)`) and bounded by a
//! small multiple of the window `W`, so the sort can be a counting sort and
//! the whole matching runs in `O(max(W, |E|))` time — that is
//! [`bucket_greedy_matching`]. [`greedy_matching`] is the comparison-sort
//! variant for arbitrary `f64` weights.

use crate::WeightedBipartiteGraph;

/// Sort-based greedy matching: ½-approximation, `O(E log E)`.
///
/// Ties are broken by `(u, v)` so results are deterministic.
pub fn greedy_matching(g: &WeightedBipartiteGraph) -> Vec<(u32, u32)> {
    let mut order: Vec<usize> = (0..g.num_edges()).collect();
    let edges = g.edges();
    order.sort_unstable_by(|&a, &b| {
        edges[b]
            .weight
            .total_cmp(&edges[a].weight)
            .then((edges[a].u, edges[a].v).cmp(&(edges[b].u, edges[b].v)))
    });
    take_greedily(g, order.into_iter())
}

/// Counting-sort greedy matching for **integer** edge weights.
///
/// `weights` must contain, for each edge of `g` (in `g.edges()` order), its
/// integral weight. Runs in `O(max_weight + E)` time and space — the paper's
/// "incredibly simple … merely updating and accessing a W-size array"
/// implementation. Ties within a bucket are broken by edge order `(u, v)`.
///
/// # Panics
/// Panics if `weights.len() != g.num_edges()`.
pub fn bucket_greedy_matching(g: &WeightedBipartiteGraph, weights: &[u64]) -> Vec<(u32, u32)> {
    assert_eq!(
        weights.len(),
        g.num_edges(),
        "one integral weight per edge required"
    );
    let max_w = weights.iter().copied().max().unwrap_or(0) as usize;
    // buckets[w] = edge indices of weight w (edge order preserved, so ties
    // stay (u, v)-ordered because g.edges() is (u, v)-sorted).
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_w + 1];
    for (i, &w) in weights.iter().enumerate() {
        if w > 0 {
            buckets[w as usize].push(i as u32);
        }
    }
    let order = buckets
        .into_iter()
        .rev()
        .flatten()
        .map(|i| i as usize)
        .collect::<Vec<_>>();
    take_greedily(g, order.into_iter())
}

fn take_greedily(
    g: &WeightedBipartiteGraph,
    order: impl Iterator<Item = usize>,
) -> Vec<(u32, u32)> {
    let mut used_l = vec![false; g.n_left() as usize];
    let mut used_r = vec![false; g.n_right() as usize];
    let mut out = Vec::new();
    let edges = g.edges();
    for i in order {
        let e = edges[i];
        if !used_l[e.u as usize] && !used_r[e.v as usize] {
            used_l[e.u as usize] = true;
            used_r[e.v as usize] = true;
            out.push((e.u, e.v));
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute, matching_weight, maximum_weight_matching};

    #[test]
    fn greedy_takes_heaviest_first() {
        let g = WeightedBipartiteGraph::from_tuples(2, 2, [(0, 0, 1.0), (0, 1, 10.0), (1, 1, 2.0)]);
        // Greedy takes (0,1)=10, blocking (1,1); leaves (1,?) nothing... but
        // (1,1) shares right 1 — wait, (1,1) is left 1/right 1, blocked.
        assert_eq!(greedy_matching(&g), vec![(0, 1)]);
    }

    #[test]
    fn greedy_is_half_approximate() {
        let mut state = 42u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..300 {
            let nl = 1 + (next() % 6) as u32;
            let nr = 1 + (next() % 6) as u32;
            let ne = (next() % 12) as usize;
            let edges: Vec<(u32, u32, f64)> = (0..ne)
                .map(|_| {
                    (
                        next() as u32 % nl,
                        next() as u32 % nr,
                        1.0 + ((next() % 100) as f64),
                    )
                })
                .collect();
            let g = WeightedBipartiteGraph::from_tuples(nl, nr, edges);
            let greedy_w = matching_weight(&g, &greedy_matching(&g));
            let opt = brute::max_weight_matching_brute(&g);
            assert!(
                greedy_w * 2.0 + 1e-9 >= opt,
                "greedy {greedy_w} below half of optimum {opt}"
            );
            assert!(greedy_w <= opt + 1e-9);
        }
    }

    #[test]
    fn bucket_matches_sort_greedy_on_integer_weights() {
        let mut state = 7u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let nl = 1 + (next() % 8) as u32;
            let nr = 1 + (next() % 8) as u32;
            let ne = (next() % 20) as usize;
            let edges: Vec<(u32, u32, f64)> = (0..ne)
                .map(|_| {
                    (
                        next() as u32 % nl,
                        next() as u32 % nr,
                        (1 + next() % 50) as f64,
                    )
                })
                .collect();
            let g = WeightedBipartiteGraph::from_tuples(nl, nr, edges);
            let ints: Vec<u64> = g.edges().iter().map(|e| e.weight as u64).collect();
            assert_eq!(bucket_greedy_matching(&g, &ints), greedy_matching(&g));
        }
    }

    #[test]
    fn bucket_handles_empty_graph() {
        let g = WeightedBipartiteGraph::from_tuples(3, 3, []);
        assert!(bucket_greedy_matching(&g, &[]).is_empty());
    }

    #[test]
    fn greedy_equals_exact_when_weights_unique_and_disjoint() {
        let g = WeightedBipartiteGraph::from_tuples(3, 3, [(0, 0, 9.0), (1, 1, 5.0), (2, 2, 3.0)]);
        assert_eq!(greedy_matching(&g), maximum_weight_matching(&g));
    }
}
