//! Greedy approximate matchings — the engine of **Octopus-G**.
//!
//! The classic greedy ("repeatedly take the heaviest edge whose endpoints are
//! both free") is a ½-approximation to maximum-weight matching (Avis 1983).
//! The paper's §8 observes that in the Octopus setting edge weights are
//! integral (after scaling packet weights by `lcm(1..=𝒟)`) and bounded by a
//! small multiple of the window `W`, so the sort can be a counting sort and
//! the whole matching runs in `O(max(W, |E|))` time — that is
//! [`bucket_greedy_matching`]. [`greedy_matching`] is the comparison-sort
//! variant for arbitrary `f64` weights.

use crate::WeightedBipartiteGraph;

/// Sort-based greedy matching: ½-approximation, `O(E log E)`.
///
/// Ties are broken by `(u, v)` so results are deterministic.
// lint:allow(hot-alloc) — amortized: per-solve workspace/result construction; buffers live for the whole matching call, outside the augmentation loops
pub fn greedy_matching(g: &WeightedBipartiteGraph) -> Vec<(u32, u32)> {
    let mut order: Vec<usize> = (0..g.num_edges()).collect();
    let edges = g.edges();
    order.sort_unstable_by(|&a, &b| {
        edges[b]
            .weight
            .total_cmp(&edges[a].weight)
            .then((edges[a].u, edges[a].v).cmp(&(edges[b].u, edges[b].v)))
    });
    take_greedily(g, order.into_iter())
}

/// Counting-sort greedy matching for **integer** edge weights.
///
/// `weights` must contain, for each edge of `g` (in `g.edges()` order), its
/// integral weight. Runs in `O(max_weight + E)` time and space — the paper's
/// "incredibly simple … merely updating and accessing a W-size array"
/// implementation. Ties within a bucket are broken by edge order `(u, v)`.
///
/// # Panics
/// Panics if `weights.len() != g.num_edges()`.
// lint:allow(hot-alloc) — amortized: per-solve workspace/result construction; buffers live for the whole matching call, outside the augmentation loops
pub fn bucket_greedy_matching(g: &WeightedBipartiteGraph, weights: &[u64]) -> Vec<(u32, u32)> {
    assert_eq!(
        weights.len(),
        g.num_edges(),
        "one integral weight per edge required"
    );
    let max_w = weights.iter().copied().max().unwrap_or(0) as usize;
    // buckets[w] = edge indices of weight w (edge order preserved, so ties
    // stay (u, v)-ordered because g.edges() is (u, v)-sorted).
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_w + 1];
    for (i, &w) in weights.iter().enumerate() {
        if w > 0 {
            buckets[w as usize].push(i as u32);
        }
    }
    let order = buckets
        .into_iter()
        .rev()
        .flatten()
        .map(|i| i as usize)
        .collect::<Vec<_>>();
    take_greedily(g, order.into_iter())
}

/// Reusable scratch for the slice-based greedy kernels.
///
/// The α-search evaluates many weight columns over one fixed edge topology
/// (see [`crate::AssignmentSolver`]); these variants take the topology as a
/// plain `(u, v)`-sorted slice plus a parallel weight column and reuse the
/// sort/marker buffers across calls, so a solve allocates nothing once the
/// buffers have warmed up. Results are bit-identical to [`greedy_matching`] /
/// [`bucket_greedy_matching`] on the graph built from the positive-weight
/// subset of the edges.
#[derive(Debug, Default)]
pub struct GreedyScratch {
    order: Vec<u32>,
    counts: Vec<u32>,
    used_l: Vec<bool>,
    used_r: Vec<bool>,
}

impl GreedyScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sort-based greedy over a fixed topology and weight column, writing the
    /// matching (sorted by `(u, v)`) into `out`.
    ///
    /// `edges` must be `(u, v)`-sorted and duplicate-free; `weights[i]` is
    /// edge `i`'s weight, with entries `<= 0.0` disabling their edge.
    /// Bit-identical to [`greedy_matching`] on the equivalent
    /// [`WeightedBipartiteGraph`].
    pub fn greedy_on(
        &mut self,
        n_left: u32,
        n_right: u32,
        edges: &[(u32, u32)],
        weights: &[f64],
        out: &mut Vec<(u32, u32)>,
    ) {
        assert_eq!(weights.len(), edges.len(), "one weight per edge required");
        self.order.clear();
        self.order
            .extend((0..edges.len() as u32).filter(|&i| weights[i as usize] > 0.0));
        // Keys (weight, u, v) are unique per edge, so the unstable sort is
        // deterministic and matches `greedy_matching`'s order exactly.
        self.order.sort_unstable_by(|&a, &b| {
            weights[b as usize]
                .total_cmp(&weights[a as usize])
                .then(edges[a as usize].cmp(&edges[b as usize]))
        });
        self.take_greedily_on(n_left, n_right, edges, out);
    }

    /// Counting-sort greedy over a fixed topology and **integral** weight
    /// column; the allocation-free analogue of [`bucket_greedy_matching`].
    ///
    /// `edges` must be `(u, v)`-sorted and duplicate-free; zero weights
    /// disable their edge. Runs in `O(max_weight + E)` with all buffers
    /// reused.
    pub fn bucket_greedy_on(
        &mut self,
        n_left: u32,
        n_right: u32,
        edges: &[(u32, u32)],
        weights: &[u64],
        out: &mut Vec<(u32, u32)>,
    ) {
        assert_eq!(weights.len(), edges.len(), "one weight per edge required");
        let max_w = weights.iter().copied().max().unwrap_or(0) as usize;
        // Counting sort by key = max_w - w (so heaviest first), stable in
        // edge index: the exact order `bucket_greedy_matching` produces.
        self.counts.clear();
        self.counts.resize(max_w + 1, 0);
        for &w in weights.iter().filter(|&&w| w > 0) {
            self.counts[max_w - w as usize] += 1;
        }
        let mut total = 0u32;
        for c in &mut self.counts {
            let here = *c;
            *c = total;
            total += here;
        }
        self.order.clear();
        self.order.resize(total as usize, 0);
        for (i, &w) in weights.iter().enumerate() {
            if w > 0 {
                let slot = &mut self.counts[max_w - w as usize];
                self.order[*slot as usize] = i as u32;
                *slot += 1;
            }
        }
        self.take_greedily_on(n_left, n_right, edges, out);
    }

    fn take_greedily_on(
        &mut self,
        n_left: u32,
        n_right: u32,
        edges: &[(u32, u32)],
        out: &mut Vec<(u32, u32)>,
    ) {
        self.used_l.clear();
        self.used_l.resize(n_left as usize, false);
        self.used_r.clear();
        self.used_r.resize(n_right as usize, false);
        out.clear();
        for &i in &self.order {
            let (u, v) = edges[i as usize];
            if !self.used_l[u as usize] && !self.used_r[v as usize] {
                self.used_l[u as usize] = true;
                self.used_r[v as usize] = true;
                out.push((u, v));
            }
        }
        out.sort_unstable();
    }
}

// lint:allow(hot-alloc) — amortized: per-solve order/result buffers; sorting scratch is not inside the take loop
fn take_greedily(
    g: &WeightedBipartiteGraph,
    order: impl Iterator<Item = usize>,
) -> Vec<(u32, u32)> {
    let mut used_l = vec![false; g.n_left() as usize];
    let mut used_r = vec![false; g.n_right() as usize];
    let mut out = Vec::new();
    let edges = g.edges();
    for i in order {
        let e = edges[i];
        if !used_l[e.u as usize] && !used_r[e.v as usize] {
            used_l[e.u as usize] = true;
            used_r[e.v as usize] = true;
            out.push((e.u, e.v));
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{brute, matching_weight, maximum_weight_matching};

    #[test]
    fn greedy_takes_heaviest_first() {
        let g = WeightedBipartiteGraph::from_tuples(2, 2, [(0, 0, 1.0), (0, 1, 10.0), (1, 1, 2.0)]);
        // Greedy takes (0,1)=10, blocking (1,1); leaves (1,?) nothing... but
        // (1,1) shares right 1 — wait, (1,1) is left 1/right 1, blocked.
        assert_eq!(greedy_matching(&g), vec![(0, 1)]);
    }

    #[test]
    fn greedy_is_half_approximate() {
        let mut state = 42u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..300 {
            let nl = 1 + (next() % 6) as u32;
            let nr = 1 + (next() % 6) as u32;
            let ne = (next() % 12) as usize;
            let edges: Vec<(u32, u32, f64)> = (0..ne)
                .map(|_| {
                    (
                        next() as u32 % nl,
                        next() as u32 % nr,
                        1.0 + ((next() % 100) as f64),
                    )
                })
                .collect();
            let g = WeightedBipartiteGraph::from_tuples(nl, nr, edges);
            let greedy_w = matching_weight(&g, &greedy_matching(&g));
            let opt = brute::max_weight_matching_brute(&g);
            assert!(
                greedy_w * 2.0 + 1e-9 >= opt,
                "greedy {greedy_w} below half of optimum {opt}"
            );
            assert!(greedy_w <= opt + 1e-9);
        }
    }

    #[test]
    fn bucket_matches_sort_greedy_on_integer_weights() {
        let mut state = 7u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let nl = 1 + (next() % 8) as u32;
            let nr = 1 + (next() % 8) as u32;
            let ne = (next() % 20) as usize;
            let edges: Vec<(u32, u32, f64)> = (0..ne)
                .map(|_| {
                    (
                        next() as u32 % nl,
                        next() as u32 % nr,
                        (1 + next() % 50) as f64,
                    )
                })
                .collect();
            let g = WeightedBipartiteGraph::from_tuples(nl, nr, edges);
            let ints: Vec<u64> = g.edges().iter().map(|e| e.weight as u64).collect();
            assert_eq!(bucket_greedy_matching(&g, &ints), greedy_matching(&g));
        }
    }

    #[test]
    fn bucket_handles_empty_graph() {
        let g = WeightedBipartiteGraph::from_tuples(3, 3, []);
        assert!(bucket_greedy_matching(&g, &[]).is_empty());
    }

    #[test]
    fn scratch_variants_match_graph_variants() {
        let mut state = 0xfeed_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut scratch = GreedyScratch::new();
        let mut out = Vec::new();
        for _ in 0..200 {
            let nl = 1 + (next() % 8) as u32;
            let nr = 1 + (next() % 8) as u32;
            let mut edges: Vec<(u32, u32)> = (0..(next() % 20) as usize)
                .map(|_| (next() as u32 % nl, next() as u32 % nr))
                .collect();
            edges.sort_unstable();
            edges.dedup();
            // Integral weights with zeros mixed in to hit the disable path.
            let ints: Vec<u64> = edges.iter().map(|_| next() % 50).collect();
            let floats: Vec<f64> = ints.iter().map(|&w| w as f64).collect();
            let tuples: Vec<(u32, u32, f64)> = edges
                .iter()
                .zip(&floats)
                .map(|(&(u, v), &w)| (u, v, w))
                .collect();
            let g = WeightedBipartiteGraph::from_tuples(nl, nr, tuples);
            let g_ints: Vec<u64> = g.edges().iter().map(|e| e.weight as u64).collect();

            scratch.greedy_on(nl, nr, &edges, &floats, &mut out);
            assert_eq!(out, greedy_matching(&g));
            scratch.bucket_greedy_on(nl, nr, &edges, &ints, &mut out);
            assert_eq!(out, bucket_greedy_matching(&g, &g_ints));
        }
    }

    #[test]
    fn greedy_equals_exact_when_weights_unique_and_disjoint() {
        let g = WeightedBipartiteGraph::from_tuples(3, 3, [(0, 0, 9.0), (1, 1, 5.0), (2, 2, 3.0)]);
        assert_eq!(greedy_matching(&g), maximum_weight_matching(&g));
    }
}
