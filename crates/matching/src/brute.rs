//! Exponential-time exact reference implementations.
//!
//! These exist to validate the polynomial algorithms in this crate (and the
//! schedulers built on them) on small instances; they are exported so
//! downstream property tests can use them too.

use crate::WeightedBipartiteGraph;

/// Maximum-weight matching by dynamic programming over subsets of right
/// vertices: `O(n_left · 2^n_right · deg)`.
///
/// # Panics
/// Panics if `n_right > 20` (the table would not fit in memory).
pub fn max_weight_matching_brute(g: &WeightedBipartiteGraph) -> f64 {
    let nl = g.n_left() as usize;
    let nr = g.n_right() as usize;
    assert!(nr <= 20, "brute force limited to 20 right vertices");
    let full = 1usize << nr;
    // dp[mask] = best weight using left vertices processed so far with the
    // set of occupied right vertices == mask's subset semantics: we store the
    // best over "occupied ⊆ mask" by max-subsuming at the end of each row.
    let mut dp = vec![f64::NEG_INFINITY; full];
    dp[0] = 0.0;
    for u in 0..nl as u32 {
        let mut next = dp.clone(); // leaving u unmatched
        for e in g.edges_of(u) {
            let bit = 1usize << e.v;
            for mask in 0..full {
                if mask & bit == 0 && dp[mask] > f64::NEG_INFINITY {
                    let cand = dp[mask] + e.weight;
                    if cand > next[mask | bit] {
                        next[mask | bit] = cand;
                    }
                }
            }
        }
        dp = next;
    }
    dp.iter().copied().fold(0.0, f64::max)
}

/// Maximum-cardinality matching size by augmenting-path search (Kuhn's
/// algorithm) — simple and exact, used to validate Hopcroft–Karp.
pub fn max_cardinality_matching_brute(g: &WeightedBipartiteGraph) -> usize {
    let nl = g.n_left() as usize;
    let nr = g.n_right() as usize;
    let mut match_r: Vec<Option<u32>> = vec![None; nr];
    let mut size = 0;
    for u in 0..nl as u32 {
        let mut seen = vec![false; nr];
        if try_kuhn(g, u, &mut seen, &mut match_r) {
            size += 1;
        }
    }
    size
}

fn try_kuhn(
    g: &WeightedBipartiteGraph,
    u: u32,
    seen: &mut [bool],
    match_r: &mut [Option<u32>],
) -> bool {
    for e in g.edges_of(u) {
        let v = e.v as usize;
        if !seen[v] {
            seen[v] = true;
            let free = match match_r[v] {
                None => true,
                Some(w) => try_kuhn(g, w, seen, match_r),
            };
            if free {
                match_r[v] = Some(u);
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_weight_simple() {
        let g = WeightedBipartiteGraph::from_tuples(2, 2, [(0, 0, 5.0), (0, 1, 6.0), (1, 1, 4.0)]);
        assert_eq!(max_weight_matching_brute(&g), 9.0);
    }

    #[test]
    fn brute_weight_empty() {
        let g = WeightedBipartiteGraph::from_tuples(2, 2, []);
        assert_eq!(max_weight_matching_brute(&g), 0.0);
    }

    #[test]
    fn brute_cardinality_perfect() {
        let g = WeightedBipartiteGraph::from_tuples(
            3,
            3,
            [(0, 0, 1.0), (0, 1, 1.0), (1, 1, 1.0), (2, 2, 1.0)],
        );
        assert_eq!(max_cardinality_matching_brute(&g), 3);
    }

    #[test]
    fn brute_cardinality_bottleneck() {
        // All lefts compete for right 0.
        let g = WeightedBipartiteGraph::from_tuples(3, 2, [(0, 0, 1.0), (1, 0, 1.0), (2, 0, 1.0)]);
        assert_eq!(max_cardinality_matching_brute(&g), 1);
    }
}
