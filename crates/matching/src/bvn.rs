//! Greedy Birkhoff–von-Neumann-style decomposition of a demand matrix.
//!
//! Classic crossbar scheduling (zero reconfiguration delay) decomposes a
//! doubly-stochastic-like demand matrix into a convex combination of
//! permutation matrices (Birkhoff–von Neumann). Solstice-style hybrid
//! schedulers use a greedy variant on sparse, non-doubly-stochastic demand.
//! This module provides such a greedy decomposition: repeatedly extract a
//! maximum-cardinality matching over the remaining positive entries, hold it
//! for the minimum entry it covers, and subtract.
//!
//! Termination: every round zeroes at least one positive entry, so at most
//! `nnz(D)` rounds are produced.

use crate::hopcroft_karp::hopcroft_karp;
use crate::WeightedBipartiteGraph;

/// One term of a decomposition: the matched `(row, col)` pairs and the
/// number of slots the matching is held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BvnTerm {
    /// Matched (row, column) entries, sorted by row.
    pub matching: Vec<(u32, u32)>,
    /// Multiplicity (slots) of this matching.
    pub duration: u64,
}

/// Greedily decomposes a non-negative integer demand matrix (given as sparse
/// `(row, col, demand)` triples over an `n×n` grid) into matchings with
/// durations such that the sum of `duration × matching` exactly reconstructs
/// the matrix.
///
/// ```
/// use octopus_matching::bvn::{decompose, reconstruct};
/// let demand = [(0, 1, 4), (1, 2, 4), (2, 0, 4)];
/// let terms = decompose(3, &demand);
/// assert_eq!(terms.len(), 1, "a permutation matrix is a single term");
/// assert_eq!(reconstruct(3, &terms)[0][1], 4);
/// ```
pub fn decompose(n: u32, demand: &[(u32, u32, u64)]) -> Vec<BvnTerm> {
    // lint:allow(btree-alloc) — cold path: one decomposition per demand matrix
    let mut remaining: std::collections::BTreeMap<(u32, u32), u64> = demand
        .iter()
        .filter(|&&(_, _, d)| d > 0)
        .map(|&(r, c, d)| ((r, c), d))
        .collect();
    let mut out = Vec::new();
    while !remaining.is_empty() {
        let g = WeightedBipartiteGraph::from_tuples(
            n,
            n,
            remaining.iter().map(|(&(r, c), &d)| (r, c, d as f64)),
        );
        let matching = hopcroft_karp(&g);
        if matching.is_empty() {
            break; // defensive: cannot happen while entries remain
        }
        // Every matched pair came out of `remaining`'s support, so the
        // lookups cannot miss; degrade by stopping/skipping instead of
        // aborting the decomposition if that invariant ever broke.
        let Some(duration) = matching
            .iter()
            .filter_map(|rc| remaining.get(rc).copied())
            .min()
        else {
            break;
        };
        for rc in &matching {
            let Some(d) = remaining.get_mut(rc) else {
                continue;
            };
            *d -= duration;
            if *d == 0 {
                remaining.remove(rc);
            }
        }
        out.push(BvnTerm { matching, duration });
    }
    out
}

/// Reconstructs the dense matrix described by a decomposition (test helper).
pub fn reconstruct(n: u32, terms: &[BvnTerm]) -> Vec<Vec<u64>> {
    let mut m = vec![vec![0u64; n as usize]; n as usize];
    for t in terms {
        for &(r, c) in &t.matching {
            m[r as usize][c as usize] += t.duration;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_reconstructs_matrix() {
        let demand = vec![(0, 1, 5u64), (1, 0, 3), (1, 2, 2), (2, 0, 7), (0, 2, 1)];
        let terms = decompose(3, &demand);
        let m = reconstruct(3, &terms);
        for &(r, c, d) in &demand {
            assert_eq!(m[r as usize][c as usize], d, "entry ({r},{c})");
        }
        // And nothing extra.
        let total: u64 = m.iter().flatten().sum();
        assert_eq!(total, demand.iter().map(|&(_, _, d)| d).sum::<u64>());
    }

    #[test]
    fn permutation_matrix_is_one_term() {
        let demand = vec![(0, 1, 4u64), (1, 2, 4), (2, 0, 4)];
        let terms = decompose(3, &demand);
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].duration, 4);
        assert_eq!(terms[0].matching.len(), 3);
    }

    #[test]
    fn empty_demand() {
        assert!(decompose(3, &[]).is_empty());
        assert!(decompose(3, &[(0, 1, 0)]).is_empty());
    }

    #[test]
    fn bounded_term_count() {
        let mut state = 5u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = 2 + (next() % 5) as u32;
            let nnz = (next() % 10) as usize;
            let mut demand = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..nnz {
                let r = next() as u32 % n;
                let c = next() as u32 % n;
                if r != c && seen.insert((r, c)) {
                    demand.push((r, c, 1 + next() % 100));
                }
            }
            let terms = decompose(n, &demand);
            assert!(terms.len() <= demand.len().max(1));
            let m = reconstruct(n, &terms);
            for &(r, c, d) in &demand {
                assert_eq!(m[r as usize][c as usize], d);
            }
        }
    }
}
