//! Forward-auction (Bertsekas) assignment kernel with ε-scaling.
//!
//! An alternative exact kernel to [`crate::AssignmentSolver`]'s successive
//! shortest augmenting paths: left vertices are *bidders*, right vertices
//! are *objects* carrying a price, and unassigned bidders repeatedly bid
//! `best-net-value − second-best-net-value + ε` on their most profitable
//! object. With ε-scaling (run the auction at a coarse ε, keep the learned
//! prices, rerun at ε/4, …, finish at ε = 1 on integer values) the kernel is
//! exactly optimal and runs in `O(E · √n · log(n·vmax))`-ish time in
//! practice. Its appeal over the Hungarian workspace is structural: within a
//! bidding round every bidder's (best, second-best) scan is an independent
//! read-only pass over a shared price vector, so the expensive part of each
//! round parallelizes across bidders — inside a *single* α-evaluation, where
//! the Hungarian kernel is inherently sequential.
//!
//! ## Determinism contract
//!
//! The result is a **pure function of `(topology, weights)`**, bit-identical
//! for every worker count and every repetition:
//!
//! * Weights are mapped to integers by an *adaptive power-of-two* scale
//!   (exact scaling, correctly-rounded product — no `log2`, no
//!   data-dependent rounding modes), then multiplied by `n_left + 1` so that
//!   ε = 1 certifies exact optimality of the scaled-integer problem. All
//!   prices and bids are `i64`; no float accumulates in the hot loop.
//! * Bidding is Jacobi-style: every active bidder computes its bid against
//!   the *same* price snapshot (sequentially, or in parallel via the
//!   position-deterministic [`rayon::steal::par_map_into`]), so bid values
//!   are independent of evaluation order.
//! * Conflict resolution is a sequential pass with a total tie-break: an
//!   object goes to the **highest bid, lowest bidder id on ties**; within a
//!   bidder's scan the implicit cheapest objects seed the running best, and
//!   real edges are scanned in ascending object order with a
//!   strictly-greater replacement rule, so equal nets resolve canonically.
//! * Like [`crate::AssignmentSolver`], solves never warm-start from a
//!   previous solve's prices — prices reset to zero per solve — for exactly
//!   the reasons spelled out in `solver.rs`: price-history-dependent
//!   tie-landing would break the bit-identical-α-search guarantee.
//!
//! ## Matching semantics
//!
//! Mirrors [`crate::AssignmentSolver`]: `load_topology` once per edge set,
//! `solve_reweighted` per weight column, weights `<= 0` disable their edge,
//! matched pairs come back sorted by left index.
//!
//! Internally the asymmetric problem (unmatched vertices allowed) is
//! embedded in a **complete symmetric** one — the only setting where
//! ε-scaling with price persistence is classically sound. With `N =
//! max(n_left, n_right)` bidders and objects, every pair not backed by an
//! enabled edge implicitly carries value 0 (this covers padding rows and
//! columns, disabled edges, and "stay unmatched", the role the Hungarian
//! kernel's dummy sink plays). Naïve dense bidding would cost `O(N)` per
//! bidder, but over the implicit 0-value objects a bidder's best and
//! second-best nets are just `−(two smallest prices)` — shared by *all*
//! bidders and computed once per Jacobi round — so a bid stays
//! `O(degree + 2)`. Every phase therefore ends with all `N` objects
//! assigned: no object is ever left free holding a stale price, which is
//! precisely the failure mode that makes forward-auction ε-scaling unsound
//! for the raw asymmetric problem (Bertsekas & Castañón treat that case
//! with combined forward/reverse auctions; the embedding sidesteps it).
//!
//! **Caveat:** on weights that are not exactly representable at the adaptive
//! integer resolution (≈38 significant bits), the kernel is exact for the
//! *rounded* problem, which may differ from the f64-optimal matching by the
//! rounding error. On integer-valued weight columns (and any column whose
//! values carry ≤ 38 significant bits, e.g. the benches' integer demands)
//! the scaling is exact and the optimal *value* matches
//! [`crate::AssignmentSolver`] bit-for-bit. The scheduler therefore treats
//! the kernel choice as part of the policy: comparisons are only ever made
//! between runs using the same kernel.

use crate::WeightedBipartiteGraph;

/// "Not assigned" marker in `match_l` / `owner`.
const UNMATCHED: u32 = u32::MAX;

/// Upper bound on the significant bits retained by the adaptive weight
/// scaling. The actual bit budget shrinks with the problem size so the
/// classical auction price bound `(N + 1) · (vmax_scaled + ε)` stays far
/// below `i64::MAX` (see [`value_bits_for`]).
const MAX_VALUE_BITS: i32 = 38;

/// Scaled-value bit budget for an `N × N` embedded problem: the price bound
/// is `≈ (N + 2) · vmax_scaled` with `vmax_scaled < (N + 1) · 2^bits`, so
/// we keep `(N + 2)² · 2^bits < 2^61`. At fabric-realistic sizes the budget
/// sits at the 38-bit cap; it only degrades (documented resolution loss)
/// beyond ~2^11 ports.
fn value_bits_for(n: usize) -> i32 {
    let n_bits = 64 - (n as u64 + 2).leading_zeros() as i32;
    (61 - 2 * n_bits).clamp(8, MAX_VALUE_BITS)
}

/// Reusable per-solve auction state: prices, bidder queues and scratch.
///
/// Buffers grow on first use and persist across solves — the auction
/// analogue of the Hungarian workspace's timestamped scratch; the hot loop
/// performs no allocation once warm.
#[derive(Debug, Default)]
pub struct AuctionWorkspace {
    /// Prices of the `N` embedded objects (real columns then padding), in
    /// scaled-integer units; reset to zero per solve, persisted across
    /// ε-phases within a solve.
    price: Vec<i64>,
    /// Object → owning bidder (`UNMATCHED` if free).
    owner: Vec<u32>,
    /// Bidder → object (`UNMATCHED` = still bidding).
    match_l: Vec<u32>,
    /// Bidder queue of the current round (ascending).
    active: Vec<u32>,
    /// Bidder queue being built for the next round.
    next_active: Vec<u32>,
    /// Per-active-bidder `(object, bid)` results of the bidding pass.
    bids: Vec<(u32, i64)>,
    /// Objects that received at least one bid this round.
    touched: Vec<u32>,
    /// Best bid per object this round (valid where `round_stamp == round`).
    best_bid: Vec<i64>,
    /// Bidder holding `best_bid` (lowest id on equal bids).
    best_bidder: Vec<u32>,
    /// Stamp marking `best_bid`/`best_bidder` entries of the current round.
    round_stamp: Vec<u32>,
    /// Current bidding round, the stamp value.
    round: u32,
    /// Diagnostics: ε-phases and total bidding rounds of the last solve.
    phases: usize,
    rounds: usize,
}

/// A reusable exact maximum-weight bipartite matching solver built on the
/// forward auction algorithm with ε-scaling.
///
/// Drop-in for [`crate::AssignmentSolver`]'s workspace surface
/// (`load_topology` / `solve_reweighted` / `solve` / `matching` /
/// `last_weight`); see the module docs for the determinism contract and the
/// integer-resolution caveat.
///
/// ```
/// use octopus_matching::AuctionSolver;
/// let mut solver = AuctionSolver::new();
/// solver.load_topology(2, 2, &[(0, 0), (0, 1), (1, 1)]);
/// // 6.0 alone loses to 5.0 + 4.0.
/// assert_eq!(solver.solve_reweighted(&[5.0, 6.0, 4.0]), &[(0, 0), (1, 1)]);
/// // Same topology, new weight column: no rebuild, no allocation.
/// assert_eq!(solver.solve_reweighted(&[1.0, 10.0, 2.0]), &[(0, 1)]);
/// assert_eq!(solver.last_weight(), 10.0);
/// ```
#[derive(Debug)]
pub struct AuctionSolver {
    nl: usize,
    nr: usize,
    /// CSR row offsets, length `nl + 1`.
    start: Vec<u32>,
    /// CSR right endpoints, ascending within each row.
    ev: Vec<u32>,
    /// CSR weights of the current solve (raw `f64`, for `last_weight`).
    ew: Vec<f64>,
    /// Scaled-integer edge values (`round(w · 2^k) · (nl + 1)`); `<= 0`
    /// disables the edge for this solve.
    val: Vec<i64>,
    /// Prices, queues and round scratch.
    ws: AuctionWorkspace,
    /// Run the bidding pass on the worker pool once this many bidders are
    /// active (below it, thread fan-out costs more than the scan).
    par_threshold: usize,
    out: Vec<(u32, u32)>,
    last_weight: f64,
    /// `mult · (N + 1)` of the most recent priced solve — converts the
    /// scaled integer prices back to weight units for
    /// [`AuctionSolver::right_prices`].
    last_scale: f64,
    /// Whether the most recent solve actually ran ε-phases (trivial solves
    /// — no enabled edge, or every weight rounding to zero — leave the
    /// price vector stale, and `right_prices` reports it empty).
    last_priced: bool,
}

impl Default for AuctionSolver {
    // lint:allow(hot-alloc) — amortized: empty Vec::new()s at workspace construction; buffers grow on first solve and are reused across solves — the reuse is the point of the workspace
    fn default() -> Self {
        AuctionSolver {
            nl: 0,
            nr: 0,
            start: Vec::new(),
            ev: Vec::new(),
            ew: Vec::new(),
            val: Vec::new(),
            ws: AuctionWorkspace::default(),
            par_threshold: 512,
            out: Vec::new(),
            last_weight: 0.0,
            last_scale: 1.0,
            last_priced: false,
        }
    }
}

impl AuctionSolver {
    /// Creates an empty workspace; buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a fixed edge topology for subsequent
    /// [`AuctionSolver::solve_reweighted`] calls.
    ///
    /// `edges` must be sorted by `(u, v)` with no duplicate pairs — the same
    /// contract as [`crate::AssignmentSolver::load_topology`]. Weights are
    /// supplied per solve, in this exact edge order.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range; debug-asserts sortedness.
    pub fn load_topology(&mut self, n_left: u32, n_right: u32, edges: &[(u32, u32)]) {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be (u, v)-sorted and unique"
        );
        self.nl = n_left as usize;
        self.nr = n_right as usize;
        self.start.clear();
        self.start.resize(self.nl + 1, 0);
        for &(u, v) in edges {
            assert!(u < n_left, "left endpoint {u} out of range");
            assert!(v < n_right, "right endpoint {v} out of range");
            self.start[u as usize + 1] += 1;
        }
        for i in 0..self.nl {
            self.start[i + 1] += self.start[i];
        }
        self.ev.clear();
        self.ev.extend(edges.iter().map(|&(_, v)| v));
        self.ew.clear();
        self.ew.resize(edges.len(), 0.0);
        self.val.clear();
        self.val.resize(edges.len(), 0);
    }

    /// Number of edges in the loaded topology.
    pub fn num_edges(&self) -> usize {
        self.ev.len()
    }

    /// Overrides the active-bidder count above which the bidding pass runs
    /// on the worker pool (default 512). Results are bit-identical either
    /// way; tests force `1` to exercise the parallel path on small inputs.
    pub fn set_parallel_bidding_threshold(&mut self, threshold: usize) {
        self.par_threshold = threshold.max(1);
    }

    /// Solves with a fresh weight column over the loaded topology.
    ///
    /// `weights[i]` is the weight of the `i`-th edge passed to
    /// [`AuctionSolver::load_topology`]; entries `<= 0.0` disable their edge
    /// for this solve. Returns the matched `(left, right)` pairs sorted by
    /// left index; the result is a pure function of `(topology, weights)`,
    /// independent of any previous solve and of the worker count.
    ///
    /// # Panics
    /// Panics if `weights.len()` differs from the loaded edge count or a
    /// weight is NaN.
    pub fn solve_reweighted(&mut self, weights: &[f64]) -> &[(u32, u32)] {
        assert_eq!(
            weights.len(),
            self.ev.len(),
            "one weight per loaded edge required"
        );
        debug_assert!(
            weights.iter().all(|w| !w.is_nan()),
            "weights must not be NaN"
        );
        self.ew.copy_from_slice(weights);
        self.run()
    }

    /// Compatibility path: loads topology and weights from `g` (reusing all
    /// buffers) and solves.
    pub fn solve(&mut self, g: &WeightedBipartiteGraph) -> &[(u32, u32)] {
        self.nl = g.n_left() as usize;
        self.nr = g.n_right() as usize;
        let edges = g.edges();
        self.start.clear();
        self.start.resize(self.nl + 1, 0);
        for e in edges {
            self.start[e.u as usize + 1] += 1;
        }
        for i in 0..self.nl {
            self.start[i + 1] += self.start[i];
        }
        self.ev.clear();
        self.ev.extend(edges.iter().map(|e| e.v));
        self.ew.clear();
        self.ew.extend(edges.iter().map(|e| e.weight));
        self.val.clear();
        self.val.resize(self.ev.len(), 0);
        self.run()
    }

    /// The matching of the most recent solve (sorted by left index).
    pub fn matching(&self) -> &[(u32, u32)] {
        &self.out
    }

    /// Moves the most recent solve's matching out of the workspace (the
    /// output buffer is left empty and regrows on the next solve).
    pub fn take_matching(&mut self) -> Vec<(u32, u32)> {
        std::mem::take(&mut self.out)
    }

    /// Total weight of the most recent solve's matching, summed in matching
    /// order (the same accumulation order as
    /// [`crate::AssignmentSolver::last_weight`]).
    pub fn last_weight(&self) -> f64 {
        self.last_weight
    }

    /// ε-phases executed by the most recent solve (diagnostics).
    pub fn last_phases(&self) -> usize {
        self.ws.phases
    }

    /// Total bidding rounds across all phases of the most recent solve
    /// (diagnostics; the per-round bid pass is the parallelizable unit).
    pub fn last_rounds(&self) -> usize {
        self.ws.rounds
    }

    /// Fills `out` with the most recent solve's object prices, unscaled to
    /// weight units and clamped to `≥ 0` (one entry per *real* right node;
    /// embedding padding is dropped). Empty when the last solve terminated
    /// before any ε-phase ran (trivial instances carry no price signal).
    ///
    /// These prices exist for **certified weak-duality bounds only**: for
    /// any `z ≥ 0`, `Σ_u max_v (w(u,v) − z_v)⁺ + Σ_v z_v` upper-bounds every
    /// matching weight, no matter how stale `z` is. They must **never** seed
    /// a subsequent solve — the module docs explain why price warm-starts
    /// break the determinism contract.
    pub fn right_prices(&self, out: &mut Vec<f64>) {
        out.clear();
        if !self.last_priced {
            return;
        }
        out.extend(
            self.ws.price[..self.nr]
                .iter()
                .map(|&p| (p as f64 / self.last_scale).max(0.0)),
        );
    }

    /// The embedded problem size: `max(nl, nr)` bidders and objects.
    fn embed_n(&self) -> usize {
        self.nl.max(self.nr)
    }

    /// Scales the weight column to integers and runs the ε-scaled auction
    /// on the `N × N` complete embedding.
    fn run(&mut self) -> &[(u32, u32)] {
        self.out.clear();
        self.last_weight = 0.0;
        self.last_priced = false;
        // Adaptive power-of-two scale: place the largest enabled weight just
        // under the size-dependent bit budget. Exponent via bit extraction,
        // not `log2()`, so the scale is an exact power of two chosen
        // deterministically.
        let vmax = self
            .ew
            .iter()
            .copied()
            .filter(|&w| w > 0.0)
            .fold(0.0f64, f64::max);
        if vmax <= 0.0 || self.nl == 0 || self.nr == 0 {
            return &self.out; // no enabled edge: empty matching
        }
        let n = self.embed_n();
        let exp = ((vmax.to_bits() >> 52) & 0x7ff) as i32 - 1023;
        // Largest shift the integer budget allows for this problem size.
        let k_budget = value_bits_for(n) - (exp + 1);
        // Smallest shift that represents *every* enabled weight exactly
        // (`i64::MAX` when none does, e.g. 1/3-style rationals): shifting
        // w = m·2^(e−52) by `52 − e − trailing_zeros(m)` makes it integral.
        // When that fits the budget, use it — fewer value bits mean fewer
        // ε-scaling phases at identical (exact) resolution. Integer weight
        // columns land at shift 0. Otherwise saturate the budget.
        let mut k_exact = i32::MIN;
        for &w in self.ew.iter().filter(|&&w| w > 0.0) {
            let bits = w.to_bits();
            let we = ((bits >> 52) & 0x7ff) as i32 - 1023;
            let mantissa = (bits & ((1u64 << 52) - 1)) | (1u64 << 52);
            let need = 52 - we - mantissa.trailing_zeros() as i32;
            k_exact = k_exact.max(need);
        }
        let k = if k_exact <= k_budget {
            k_exact.clamp(-1023, 1023)
        } else {
            // `powi` on 2.0 is exact for every in-range power of two; the
            // clamp keeps the finite range (subnormal vmax would otherwise
            // ask for 2^1060).
            k_budget.clamp(-1023, 1023)
        };
        let mult = 2.0f64.powi(k);
        let certify = n as i64 + 1;
        let mut sval_max = 0i64;
        for (dst, &w) in self.val.iter_mut().zip(&self.ew) {
            if w > 0.0 {
                // Correctly-rounded product with an exact power of two,
                // then ties-away rounding: deterministic on every IEEE-754
                // platform. Values scaled under the bit budget fit i64
                // comfortably even after the certification multiplier.
                // lint:allow(unchecked-arith) — bound: |w·mult| < 2^38 (value_bits_for) and certify = N+1, so the product stays under (N+2)²·2^38 < 2^61 « i64::MAX.
                let scaled = (w * mult).round() as i64 * certify;
                *dst = scaled;
                sval_max = sval_max.max(scaled);
            } else {
                *dst = 0;
            }
        }
        if sval_max == 0 {
            return &self.out; // every enabled weight rounded to zero
        }
        self.ws.price.clear();
        self.ws.price.resize(n, 0);
        self.ws.phases = 0;
        self.ws.rounds = 0;
        // ε-scaling schedule: coarse phases learn prices cheaply and
        // persist them; the final ε = 1 phase certifies exactness (values
        // are multiples of `N + 1`, so `N·ε` is below one value quantum).
        let mut eps = (sval_max / 4).max(1);
        loop {
            self.run_phase(eps);
            if eps == 1 {
                break;
            }
            eps = (eps / 4).max(1);
        }
        self.last_scale = mult * certify as f64;
        self.last_priced = true;
        for u in 0..self.nl as u32 {
            let obj = self.ws.match_l[u as usize];
            if obj == UNMATCHED || obj as usize >= self.nr {
                continue; // padding column = "stay unmatched"
            }
            let row =
                &self.ev[self.start[u as usize] as usize..self.start[u as usize + 1] as usize];
            let pos = row.partition_point(|&v| v < obj);
            // Enabled real edges strictly dominate their implicit 0-value
            // twin, so an assignment over an enabled edge always came from
            // that edge; anything else is an implicit 0-value pair, i.e.
            // unmatched in the original problem.
            if row.get(pos) == Some(&obj) {
                let idx = self.start[u as usize] as usize + pos;
                if self.val[idx] > 0 {
                    self.out.push((u, obj));
                    self.last_weight += self.ew[idx];
                }
            }
        }
        &self.out
    }

    /// One auction phase at a fixed ε: restart the assignment (prices
    /// persist) and run Jacobi bidding rounds until all `N` bidders of the
    /// complete embedding hold an object.
    fn run_phase(&mut self, eps: i64) {
        let n = self.embed_n();
        self.ws.phases += 1;
        self.ws.match_l.clear();
        self.ws.match_l.resize(n, UNMATCHED);
        self.ws.owner.clear();
        self.ws.owner.resize(n, UNMATCHED);
        self.ws.round_stamp.clear();
        self.ws.round_stamp.resize(n, 0);
        self.ws.best_bid.clear();
        self.ws.best_bid.resize(n, 0);
        self.ws.best_bidder.clear();
        self.ws.best_bidder.resize(n, UNMATCHED);
        self.ws.round = 0;

        // The queues move out of the workspace for the duration of the
        // phase so the bidding pass can borrow `self` immutably.
        let mut active = std::mem::take(&mut self.ws.active);
        let mut next = std::mem::take(&mut self.ws.next_active);
        let mut bids = std::mem::take(&mut self.ws.bids);
        active.clear();
        active.extend(0..n as u32);

        while !active.is_empty() {
            // Round snapshot of the two cheapest objects (lowest ids on
            // price ties): the best/second-best *implicit* 0-value
            // candidates of every bidder at once — what keeps a bid
            // O(degree) instead of O(N) on the complete embedding.
            let (cheap1, cheap2) = cheapest_two(&self.ws.price);
            bids.clear();
            bids.resize(active.len(), (UNMATCHED, 0));
            if active.len() >= self.par_threshold {
                rayon::steal::par_map_into(&active, &mut bids, |&u| {
                    self.bid_of(u, eps, cheap1, cheap2)
                });
            } else {
                for (dst, &u) in bids.iter_mut().zip(&active) {
                    *dst = self.bid_of(u, eps, cheap1, cheap2);
                }
            }

            // Sequential conflict resolution: highest bid wins each object,
            // lowest bidder id on ties — independent of queue order and
            // worker count.
            self.ws.round += 1;
            self.ws.rounds += 1;
            let round = self.ws.round;
            self.ws.touched.clear();
            for (&u, &(obj, bid)) in active.iter().zip(&bids) {
                let o = obj as usize;
                if self.ws.round_stamp[o] != round {
                    self.ws.round_stamp[o] = round;
                    self.ws.best_bid[o] = bid;
                    self.ws.best_bidder[o] = u;
                    self.ws.touched.push(obj);
                } else if bid > self.ws.best_bid[o]
                    || (bid == self.ws.best_bid[o] && u < self.ws.best_bidder[o])
                {
                    self.ws.best_bid[o] = bid;
                    self.ws.best_bidder[o] = u;
                }
            }

            next.clear();
            for i in 0..self.ws.touched.len() {
                let o = self.ws.touched[i] as usize;
                let winner = self.ws.best_bidder[o];
                self.ws.price[o] = self.ws.best_bid[o];
                let displaced = self.ws.owner[o];
                if displaced != UNMATCHED {
                    self.ws.match_l[displaced as usize] = UNMATCHED;
                    next.push(displaced);
                }
                self.ws.owner[o] = winner;
                self.ws.match_l[winner as usize] = self.ws.touched[i];
            }
            for &u in &active {
                if self.ws.match_l[u as usize] == UNMATCHED {
                    next.push(u);
                }
            }
            // Ascending queue order keeps the bidding pass cache-friendly
            // and canonical; correctness does not depend on it (the
            // resolution tie-break compares bidder ids explicitly).
            next.sort_unstable();
            std::mem::swap(&mut active, &mut next);
        }

        self.ws.active = active;
        self.ws.next_active = next;
        self.ws.bids = bids;
    }

    /// Computes bidder `u`'s bid against the current price snapshot: the
    /// best and second-best net values over its enabled edges plus the two
    /// cheapest implicit 0-value objects (`cheap1`, `cheap2` — precomputed
    /// per round). Read-only, hence safe to evaluate for many bidders in
    /// parallel.
    ///
    /// The seeded pair is exactly the top-2 of the implicit candidates, so
    /// together with the full CSR scan the result is the true best/second
    /// of the bidder's complete embedded row. (When a seed object is also
    /// an enabled edge of `u`, the edge's strictly larger value wins the
    /// best slot, and the 0-value twin at most *inflates* `second`, which
    /// only lowers the bid — ε-complementary slackness tolerates that.)
    ///
    /// Bids may ride on negative net values: in the complete embedding
    /// every bidder must land somewhere, and "stay unmatched" is just an
    /// implicit pair like any other. Bid = p(best) + (best_net −
    /// second_net) + ε = value(best) − second + ε: strictly above the old
    /// price by ≥ ε, so every round makes progress and prices stay under
    /// the classical `(N + 2) · vmax_scaled` bound the integer budget is
    /// sized for ([`value_bits_for`]).
    fn bid_of(&self, u: u32, eps: i64, cheap1: u32, cheap2: u32) -> (u32, i64) {
        let ui = u as usize;
        // Seed with the two cheapest implicit objects (value 0).
        let mut best_obj = cheap1;
        let mut best_val = 0i64;
        let mut best_net = -self.ws.price[cheap1 as usize];
        let mut second = -self.ws.price[cheap2 as usize];
        if ui < self.nl {
            for idx in self.start[ui] as usize..self.start[ui + 1] as usize {
                let sval = self.val[idx];
                if sval <= 0 {
                    continue;
                }
                let net = sval - self.ws.price[self.ev[idx] as usize];
                if net > best_net {
                    second = best_net;
                    best_net = net;
                    best_obj = self.ev[idx];
                    best_val = sval;
                } else if net > second {
                    second = net;
                }
            }
        }
        // lint:allow(unchecked-arith) — bound: |best_val|, |second|, eps ≤ (N+2)·vmax_scaled < 2^61 (doc comment above / value_bits_for), so the i64 sum cannot overflow.
        (best_obj, best_val - second + eps)
    }
}

/// Indices of the two smallest entries of `prices` (lowest index on ties);
/// returns the same index twice on a 1-element slice. `prices` is non-empty
/// (the solver bails out before phases when the embedding is empty).
fn cheapest_two(prices: &[i64]) -> (u32, u32) {
    let mut j1 = 0usize;
    let mut j2 = usize::MAX;
    for (j, &p) in prices.iter().enumerate().skip(1) {
        if p < prices[j1] {
            j2 = j1;
            j1 = j;
        } else if j2 == usize::MAX || p < prices[j2] {
            j2 = j;
        }
    }
    if j2 == usize::MAX {
        j2 = j1;
    }
    (j1 as u32, j2 as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{matching_weight, AssignmentSolver};

    /// Brute-force optimal weight by recursion over left vertices.
    fn brute_best(nl: u32, nr: u32, edges: &[(u32, u32)], w: &[f64]) -> f64 {
        fn rec(u: u32, nl: u32, used: &mut Vec<bool>, edges: &[(u32, u32)], w: &[f64]) -> f64 {
            if u == nl {
                return 0.0;
            }
            let mut best = rec(u + 1, nl, used, edges, w); // leave u unmatched
            for (i, &(eu, ev)) in edges.iter().enumerate() {
                if eu == u && w[i] > 0.0 && !used[ev as usize] {
                    used[ev as usize] = true;
                    best = best.max(w[i] + rec(u + 1, nl, used, edges, w));
                    used[ev as usize] = false;
                }
            }
            best
        }
        rec(0, nl, &mut vec![false; nr as usize], edges, w)
    }

    #[test]
    fn small_instances_are_optimal() {
        let edges = vec![(0, 0), (0, 1), (1, 0), (1, 2), (2, 1), (2, 2)];
        let mut solver = AuctionSolver::new();
        solver.load_topology(3, 3, &edges);
        let columns: Vec<Vec<f64>> = vec![
            vec![7.0, 8.0, 9.0, 2.0, 3.0, 4.0],
            vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            vec![0.0, 5.0, -1.0, 2.0, 0.0, 8.0],
            vec![7.0, 8.0, 9.0, 2.0, 3.0, 4.0], // revisit an earlier column
        ];
        for col in &columns {
            let got = solver.solve_reweighted(col).to_vec();
            // Validity: each endpoint at most once, only enabled edges.
            let mut seen_l = vec![false; 3];
            let mut seen_r = vec![false; 3];
            for &(u, v) in &got {
                assert!(!seen_l[u as usize] && !seen_r[v as usize]);
                seen_l[u as usize] = true;
                seen_r[v as usize] = true;
                assert!(edges.iter().any(|&e| e == (u, v)));
            }
            let best = brute_best(3, 3, &edges, col);
            assert_eq!(solver.last_weight(), best, "column {col:?}");
        }
    }

    #[test]
    fn agrees_with_hungarian_on_integer_weights() {
        // Deterministic pseudo-random integer instances: the adaptive
        // power-of-two scaling is exact on integers, so the optimal value
        // must equal the Hungarian kernel's bit-for-bit.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [4u32, 7, 12] {
            let mut edges = Vec::new();
            for u in 0..n {
                for v in 0..n {
                    if next() % 10 < 6 {
                        edges.push((u, v));
                    }
                }
            }
            let weights: Vec<f64> = edges.iter().map(|_| (next() % 1000) as f64).collect();
            let mut auction = AuctionSolver::new();
            auction.load_topology(n, n, &edges);
            let am = auction.solve_reweighted(&weights).to_vec();
            let mut hungarian = AssignmentSolver::new();
            hungarian.load_topology(n, n, &edges);
            hungarian.solve_reweighted(&weights);
            assert_eq!(
                auction.last_weight(),
                hungarian.last_weight(),
                "n = {n}, edges = {edges:?}, weights = {weights:?}"
            );
            // Validity of the auction matching.
            let mut seen_r = vec![false; n as usize];
            for &(u, v) in &am {
                assert!(!seen_r[v as usize], "object {v} matched twice");
                seen_r[v as usize] = true;
                let i = edges.iter().position(|&e| e == (u, v)).unwrap();
                assert!(weights[i] > 0.0);
            }
        }
    }

    #[test]
    fn parallel_bidding_is_bit_identical() {
        // Force the parallel bidding path (threshold 1) and sweep worker
        // counts: matchings must be identical to the sequential pass.
        let n = 16u32;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in 0..n {
                if (u + 2 * v) % 3 != 0 {
                    edges.push((u, v));
                }
            }
        }
        let weights: Vec<f64> = edges
            .iter()
            .map(|&(u, v)| f64::from((u * 31 + v * 17) % 97 + 1))
            .collect();
        let mut reference = AuctionSolver::new();
        reference.load_topology(n, n, &edges);
        let expected = reference.solve_reweighted(&weights).to_vec();
        let expected_weight = reference.last_weight();
        for workers in [1usize, 2, 4, 8] {
            rayon::ThreadPoolBuilder::new()
                .num_threads(workers)
                .build_global()
                .unwrap();
            let mut solver = AuctionSolver::new();
            solver.load_topology(n, n, &edges);
            solver.set_parallel_bidding_threshold(1);
            let got = solver.solve_reweighted(&weights).to_vec();
            assert_eq!(got, expected, "workers = {workers}");
            assert_eq!(solver.last_weight().to_bits(), expected_weight.to_bits());
        }
        rayon::ThreadPoolBuilder::new().build_global().unwrap();
    }

    #[test]
    fn nonpositive_weights_disable_edges() {
        let mut solver = AuctionSolver::new();
        solver.load_topology(2, 2, &[(0, 0), (0, 1), (1, 1)]);
        assert_eq!(
            solver.solve_reweighted(&[0.0, -3.0, 0.0]),
            &[] as &[(u32, u32)]
        );
        assert_eq!(solver.last_weight(), 0.0);
        assert_eq!(solver.solve_reweighted(&[0.0, 2.0, 0.0]), &[(0, 1)]);
    }

    #[test]
    fn solve_compat_path_matches_graph_weight() {
        let g = WeightedBipartiteGraph::from_tuples(
            4,
            2,
            [
                (0, 0, 3.0),
                (1, 0, 4.0),
                (2, 1, 1.0),
                (3, 1, 2.0),
                (0, 1, 5.0),
            ],
        );
        let mut solver = AuctionSolver::new();
        let m = solver.solve(&g).to_vec();
        assert_eq!(matching_weight(&g, &m), solver.last_weight());
        assert_eq!(solver.last_weight(), 9.0); // (1,0)=4 + (0,1)=5
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let mut solver = AuctionSolver::new();
        solver.load_topology(0, 0, &[]);
        assert_eq!(solver.solve_reweighted(&[]), &[] as &[(u32, u32)]);
        solver.load_topology(3, 1, &[(0, 0), (1, 0), (2, 0)]);
        // All three bidders fight over one object; highest weight wins.
        assert_eq!(solver.solve_reweighted(&[1.0, 5.0, 2.0]), &[(1, 0)]);
        assert_eq!(solver.last_weight(), 5.0);
    }

    #[test]
    fn repeat_solves_are_pure() {
        // Prices must not leak between solves: identical inputs, identical
        // outputs, ten times in a row.
        let edges: Vec<(u32, u32)> = (0..6u32)
            .flat_map(|u| (0..6u32).map(move |v| (u, v)))
            .collect();
        let weights: Vec<f64> = edges
            .iter()
            .map(|&(u, v)| f64::from((u * 7 + v * 13) % 23))
            .collect();
        let mut solver = AuctionSolver::new();
        solver.load_topology(6, 6, &edges);
        let first = solver.solve_reweighted(&weights).to_vec();
        let first_weight = solver.last_weight();
        for _ in 0..10 {
            assert_eq!(solver.solve_reweighted(&weights), first.as_slice());
            assert_eq!(solver.last_weight().to_bits(), first_weight.to_bits());
        }
    }
}
