//! Hopcroft–Karp maximum-cardinality bipartite matching, `O(E √V)`.
//!
//! Used as a substrate by the Birkhoff–von-Neumann-style decomposition
//! ([`crate::bvn`]) and available to baseline schedulers that need to cover a
//! demand matrix with as few configurations as possible.

use crate::WeightedBipartiteGraph;

/// Computes a maximum-cardinality matching of `g` (weights ignored).
///
/// Returns `(left, right)` pairs sorted by left index.
///
/// ```
/// use octopus_matching::{hopcroft_karp::hopcroft_karp, WeightedBipartiteGraph};
/// let g = WeightedBipartiteGraph::from_tuples(
///     3, 3, [(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (2, 2, 1.0)]);
/// assert_eq!(hopcroft_karp(&g).len(), 3);
/// ```
pub fn hopcroft_karp(g: &WeightedBipartiteGraph) -> Vec<(u32, u32)> {
    let nl = g.n_left() as usize;
    let nr = g.n_right() as usize;
    let mut match_l: Vec<Option<u32>> = vec![None; nl];
    let mut match_r: Vec<Option<u32>> = vec![None; nr];
    let mut dist: Vec<u32> = vec![u32::MAX; nl];

    loop {
        // BFS layering from free left vertices.
        let mut queue = std::collections::VecDeque::new();
        for u in 0..nl {
            if match_l[u].is_none() {
                dist[u] = 0;
                queue.push_back(u as u32);
            } else {
                dist[u] = u32::MAX;
            }
        }
        let mut found_free = false;
        while let Some(u) = queue.pop_front() {
            for e in g.edges_of(u) {
                match match_r[e.v as usize] {
                    None => found_free = true,
                    Some(u2) => {
                        if dist[u2 as usize] == u32::MAX {
                            dist[u2 as usize] = dist[u as usize] + 1;
                            queue.push_back(u2);
                        }
                    }
                }
            }
        }
        if !found_free {
            break;
        }
        // DFS augmentation along the layering.
        for u in 0..nl as u32 {
            if match_l[u as usize].is_none() {
                dfs(g, u, &mut match_l, &mut match_r, &mut dist);
            }
        }
    }

    let mut out: Vec<(u32, u32)> = match_l
        .iter()
        .enumerate()
        .filter_map(|(u, &v)| v.map(|v| (u as u32, v)))
        .collect();
    out.sort_unstable();
    out
}

fn dfs(
    g: &WeightedBipartiteGraph,
    u: u32,
    match_l: &mut [Option<u32>],
    match_r: &mut [Option<u32>],
    dist: &mut [u32],
) -> bool {
    for e in g.edges_of(u) {
        let v = e.v as usize;
        let ok = match match_r[v] {
            None => true,
            Some(u2) => {
                dist[u2 as usize] == dist[u as usize].saturating_add(1)
                    && dfs(g, u2, match_l, match_r, dist)
            }
        };
        if ok {
            match_l[u as usize] = Some(e.v);
            match_r[v] = Some(u);
            return true;
        }
    }
    dist[u as usize] = u32::MAX; // dead end: prune
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;

    #[test]
    fn perfect_matching_on_identity() {
        let g = WeightedBipartiteGraph::from_tuples(
            4,
            4,
            (0..4).map(|i| (i, i, 1.0)).collect::<Vec<_>>(),
        );
        assert_eq!(hopcroft_karp(&g).len(), 4);
    }

    #[test]
    fn matches_kuhn_on_random_graphs() {
        let mut state = 3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..300 {
            let nl = 1 + (next() % 8) as u32;
            let nr = 1 + (next() % 8) as u32;
            let ne = (next() % 24) as usize;
            let edges: Vec<(u32, u32, f64)> = (0..ne)
                .map(|_| (next() as u32 % nl, next() as u32 % nr, 1.0))
                .collect();
            let g = WeightedBipartiteGraph::from_tuples(nl, nr, edges);
            let hk = hopcroft_karp(&g);
            // validity
            let mut ls = std::collections::HashSet::new();
            let mut rs = std::collections::HashSet::new();
            for &(u, v) in &hk {
                assert!(ls.insert(u));
                assert!(rs.insert(v));
                assert!(g.weight(u, v) > 0.0, "matched a non-edge");
            }
            assert_eq!(hk.len(), brute::max_cardinality_matching_brute(&g));
        }
    }

    #[test]
    fn empty_graph() {
        let g = WeightedBipartiteGraph::from_tuples(3, 3, []);
        assert!(hopcroft_karp(&g).is_empty());
    }
}
