//! Parity proptests pinning the auction kernel to [`AssignmentSolver`].
//!
//! The auction's determinism contract (auction.rs module docs) promises
//! exact optimality on weight columns whose values fit the adaptive integer
//! resolution. Integer-valued columns always do, so on them the two exact
//! kernels must agree on the optimal *weight* to the last bit (sums of
//! integers below 2^53 are exact in f64 regardless of summation order), and
//! on the *matching* itself whenever the optimum is unique. The parallel
//! bidding path must reproduce the sequential one bit-for-bit.

use octopus_matching::{AssignmentSolver, AuctionSolver};
use proptest::prelude::*;

/// Strategy: a sorted, deduplicated topology plus integer weight columns
/// (with non-positive entries, exercising the `w <= 0` edge-disabling).
#[allow(clippy::type_complexity)]
fn topology_and_int_columns() -> impl Strategy<Value = (u32, u32, Vec<(u32, u32)>, Vec<Vec<f64>>)> {
    (1u32..9, 1u32..9)
        .prop_flat_map(|(nl, nr)| {
            (
                Just(nl),
                Just(nr),
                prop::collection::vec((0..nl, 0..nr), 0..24),
            )
        })
        .prop_flat_map(|(nl, nr, mut raw)| {
            raw.sort_unstable();
            raw.dedup();
            let ne = raw.len();
            let cols = prop::collection::vec(prop::collection::vec(-40i64..4000, ne..=ne), 1..4);
            (Just(nl), Just(nr), Just(raw), cols)
        })
        .prop_map(|(nl, nr, edges, cols)| {
            let cols: Vec<Vec<f64>> = cols
                .into_iter()
                .map(|c| c.into_iter().map(|w| w as f64).collect())
                .collect();
            (nl, nr, edges, cols)
        })
}

fn is_matching(m: &[(u32, u32)]) -> bool {
    let mut ls = std::collections::HashSet::new();
    let mut rs = std::collections::HashSet::new();
    m.iter().all(|&(u, v)| ls.insert(u) && rs.insert(v))
}

/// Enumerates every matching of the positive subgraph, returning the optimal
/// weight and how many matchings attain it (counting the empty matching).
fn brute_optima(edges: &[(u32, u32)], col: &[f64]) -> (f64, usize) {
    fn rec(
        idx: usize,
        edges: &[(u32, u32)],
        col: &[f64],
        used_l: &mut Vec<u32>,
        used_r: &mut Vec<u32>,
        acc: f64,
        best: &mut f64,
        count: &mut usize,
    ) {
        if idx == edges.len() {
            // Each include/skip path reaches exactly one terminal per
            // distinct matching (edge subset), so counting terminals counts
            // matchings.
            if acc > *best + 1e-9 {
                *best = acc;
                *count = 1;
            } else if (acc - *best).abs() <= 1e-9 {
                *count += 1;
            }
            return;
        }
        let (u, v) = edges[idx];
        rec(idx + 1, edges, col, used_l, used_r, acc, best, count);
        if col[idx] > 0.0 && !used_l.contains(&u) && !used_r.contains(&v) {
            used_l.push(u);
            used_r.push(v);
            rec(
                idx + 1,
                edges,
                col,
                used_l,
                used_r,
                acc + col[idx],
                best,
                count,
            );
            used_l.pop();
            used_r.pop();
        }
    }
    let mut best = 0.0;
    let mut count = 0;
    rec(
        0,
        edges,
        col,
        &mut Vec::new(),
        &mut Vec::new(),
        0.0,
        &mut best,
        &mut count,
    );
    (best, count)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// On integer columns the auction's total weight equals the Hungarian
    /// solver's exactly, its matching is valid, and every matched pair is an
    /// enabled (positive-weight) edge — across repeated reweighted solves on
    /// one loaded topology.
    #[test]
    fn auction_weight_equals_hungarian(
        (nl, nr, edges, cols) in topology_and_int_columns()
    ) {
        let mut hungarian = AssignmentSolver::new();
        let mut auction = AuctionSolver::new();
        hungarian.load_topology(nl, nr, &edges);
        auction.load_topology(nl, nr, &edges);
        for col in &cols {
            let m = auction.solve_reweighted(col).to_vec();
            hungarian.solve_reweighted(col);
            prop_assert!(is_matching(&m));
            for &(u, v) in &m {
                let idx = edges.binary_search(&(u, v)).expect("matched pair is an edge");
                prop_assert!(col[idx] > 0.0, "matched a disabled edge ({u}, {v})");
            }
            prop_assert_eq!(
                auction.last_weight(),
                hungarian.last_weight(),
                "kernels disagree on the optimal weight"
            );
        }
    }

    /// When the optimum is unique (brute-force-checked), both exact kernels
    /// must return the *identical* matching — the canonical tie-breaks only
    /// get freedom when distinct optimal matchings exist.
    #[test]
    fn auction_matching_identical_on_unique_optimum(
        (nl, nr, edges, cols) in topology_and_int_columns()
    ) {
        prop_assume!(edges.len() <= 14); // brute enumeration budget
        let mut hungarian = AssignmentSolver::new();
        let mut auction = AuctionSolver::new();
        hungarian.load_topology(nl, nr, &edges);
        auction.load_topology(nl, nr, &edges);
        for col in &cols {
            let (best, count) = brute_optima(&edges, col);
            let a = auction.solve_reweighted(col).to_vec();
            let h = hungarian.solve_reweighted(col).to_vec();
            prop_assert!((auction.last_weight() - best).abs() < 1e-9);
            if count == 1 && best > 0.0 {
                prop_assert_eq!(&a, &h, "unique optimum, kernels diverged");
            }
        }
    }

    /// The parallel bidding pass (position-deterministic `par_map_into`) is
    /// bit-identical to the sequential pass: forcing every round through the
    /// parallel path must not change a single matched pair.
    #[test]
    fn parallel_bidding_path_matches_sequential(
        (nl, nr, edges, cols) in topology_and_int_columns()
    ) {
        let mut seq = AuctionSolver::new();
        let mut par = AuctionSolver::new();
        seq.load_topology(nl, nr, &edges);
        par.load_topology(nl, nr, &edges);
        par.set_parallel_bidding_threshold(1);
        for col in &cols {
            let a = seq.solve_reweighted(col).to_vec();
            let b = par.solve_reweighted(col).to_vec();
            prop_assert_eq!(a, b);
            prop_assert_eq!(seq.last_weight().to_bits(), par.last_weight().to_bits());
        }
    }
}
