//! Property-based tests (proptest) for the matching kernels: optimality,
//! approximation bounds, and cross-kernel agreement on random graphs.

use octopus_matching::{
    blossom::maximum_weight_matching_general,
    brute, bvn,
    general::{general_matching_brute, greedy_general_matching},
    greedy::{bucket_greedy_matching, greedy_matching, GreedyScratch},
    hopcroft_karp::hopcroft_karp,
    matching_weight, maximum_weight_matching, AssignmentSolver, WeightedBipartiteGraph,
};
use proptest::prelude::*;

/// Strategy: a small random weighted bipartite graph.
fn bipartite() -> impl Strategy<Value = (u32, u32, Vec<(u32, u32, f64)>)> {
    (1u32..7, 1u32..7).prop_flat_map(|(nl, nr)| {
        let edges = prop::collection::vec(
            (0..nl, 0..nr, 1u32..1000u32).prop_map(|(u, v, w)| (u, v, w as f64)),
            0..16,
        );
        (Just(nl), Just(nr), edges)
    })
}

/// Strategy: a fixed `(u, v)`-sorted topology plus several independent weight
/// columns (including non-positive entries, to exercise the `w <= 0` edge
/// dropping) and a chain of non-negative increments for monotone updates.
#[allow(clippy::type_complexity)]
fn topology_and_columns(
) -> impl Strategy<Value = (u32, u32, Vec<(u32, u32)>, Vec<Vec<f64>>, Vec<Vec<u64>>)> {
    (1u32..7, 1u32..7)
        .prop_flat_map(|(nl, nr)| {
            (
                Just(nl),
                Just(nr),
                prop::collection::vec((0..nl, 0..nr), 0..16),
            )
        })
        .prop_flat_map(|(nl, nr, mut raw)| {
            raw.sort_unstable();
            raw.dedup();
            let ne = raw.len();
            let cols = prop::collection::vec(prop::collection::vec(-400i64..8000, ne..=ne), 1..5);
            let deltas = prop::collection::vec(prop::collection::vec(0u64..64, ne..=ne), 0..4);
            (Just(nl), Just(nr), Just(raw), cols, deltas)
        })
        .prop_map(|(nl, nr, edges, cols, deltas)| {
            let cols: Vec<Vec<f64>> = cols
                .into_iter()
                .map(|c| c.into_iter().map(|w| w as f64 / 8.0).collect())
                .collect();
            (nl, nr, edges, cols, deltas)
        })
}

/// Cold reference: one-shot kernel on the positive-weight subgraph.
fn cold_solve(nl: u32, nr: u32, edges: &[(u32, u32)], col: &[f64]) -> Vec<(u32, u32)> {
    let tuples: Vec<(u32, u32, f64)> = edges
        .iter()
        .zip(col)
        .map(|(&(u, v), &w)| (u, v, w))
        .collect();
    maximum_weight_matching(&WeightedBipartiteGraph::from_tuples(nl, nr, tuples))
}

fn is_matching(m: &[(u32, u32)]) -> bool {
    let mut ls = std::collections::HashSet::new();
    let mut rs = std::collections::HashSet::new();
    m.iter().all(|&(u, v)| ls.insert(u) && rs.insert(v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn exact_bipartite_matches_brute_force((nl, nr, edges) in bipartite()) {
        let g = WeightedBipartiteGraph::from_tuples(nl, nr, edges);
        let m = maximum_weight_matching(&g);
        prop_assert!(is_matching(&m));
        let got = matching_weight(&g, &m);
        let want = brute::max_weight_matching_brute(&g);
        prop_assert!((got - want).abs() < 1e-6, "exact {got} vs brute {want}");
    }

    #[test]
    fn greedy_is_half_approximate((nl, nr, edges) in bipartite()) {
        let g = WeightedBipartiteGraph::from_tuples(nl, nr, edges);
        let greedy = matching_weight(&g, &greedy_matching(&g));
        let opt = brute::max_weight_matching_brute(&g);
        prop_assert!(greedy * 2.0 + 1e-9 >= opt);
        prop_assert!(greedy <= opt + 1e-9);
    }

    #[test]
    fn bucket_greedy_equals_sort_greedy_on_integers((nl, nr, edges) in bipartite()) {
        let g = WeightedBipartiteGraph::from_tuples(nl, nr, edges);
        let ints: Vec<u64> = g.edges().iter().map(|e| e.weight as u64).collect();
        prop_assert_eq!(bucket_greedy_matching(&g, &ints), greedy_matching(&g));
    }

    #[test]
    fn hopcroft_karp_is_maximum_cardinality((nl, nr, edges) in bipartite()) {
        let g = WeightedBipartiteGraph::from_tuples(nl, nr, edges);
        let hk = hopcroft_karp(&g);
        prop_assert!(is_matching(&hk));
        prop_assert_eq!(hk.len(), brute::max_cardinality_matching_brute(&g));
    }

    #[test]
    fn blossom_matches_brute_on_general_graphs(
        n in 2u32..8,
        raw in prop::collection::vec((0u32..8, 0u32..8, 1i64..500), 0..12),
    ) {
        let edges: Vec<(u32, u32, i64)> = raw
            .into_iter()
            .map(|(a, b, w)| (a % n, b % n, w))
            .collect();
        let m = maximum_weight_matching_general(n, &edges);
        prop_assert!(is_matching(&m));
        let got: i64 = m
            .iter()
            .map(|&(a, b)| {
                edges
                    .iter()
                    .filter(|&&(x, y, _)| (x.min(y), x.max(y)) == (a, b))
                    .map(|&(_, _, w)| w)
                    .max()
                    .unwrap_or(0)
            })
            .sum();
        let fedges: Vec<(u32, u32, f64)> =
            edges.iter().map(|&(a, b, w)| (a, b, w as f64)).collect();
        let want = general_matching_brute(n, &fedges);
        prop_assert!((got as f64 - want).abs() < 1e-9, "blossom {got} vs brute {want}");
        // And the greedy general matcher stays within its half bound.
        let gw: f64 = greedy_general_matching(n, &fedges)
            .iter()
            .map(|&(a, b)| {
                fedges
                    .iter()
                    .filter(|&&(x, y, _)| (x.min(y), x.max(y)) == (a, b))
                    .map(|&(_, _, w)| w)
                    .fold(0.0, f64::max)
            })
            .sum();
        prop_assert!(gw * 2.0 + 1e-9 >= want);
    }

    #[test]
    fn solver_reweighted_bit_identical_to_cold_solve(
        (nl, nr, edges, cols, deltas) in topology_and_columns()
    ) {
        let mut solver = AssignmentSolver::new();
        solver.load_topology(nl, nr, &edges);
        // Independent columns: the workspace result must be a pure function
        // of (topology, weights), whatever was solved before.
        for col in &cols {
            let warm = solver.solve_reweighted(col).to_vec();
            prop_assert_eq!(&warm, &cold_solve(nl, nr, &edges, col));
        }
        // Monotone updates: bump weights in place and re-solve each step.
        let mut col = cols.last().unwrap().clone();
        for delta in &deltas {
            for (w, d) in col.iter_mut().zip(delta) {
                *w += *d as f64;
            }
            let warm = solver.solve_reweighted(&col).to_vec();
            prop_assert_eq!(&warm, &cold_solve(nl, nr, &edges, &col));
        }
    }

    #[test]
    fn solver_reused_across_graphs_matches_one_shot(
        (nl1, nr1, edges1) in bipartite(),
        (nl2, nr2, edges2) in bipartite(),
    ) {
        let g1 = WeightedBipartiteGraph::from_tuples(nl1, nr1, edges1);
        let g2 = WeightedBipartiteGraph::from_tuples(nl2, nr2, edges2);
        let mut solver = AssignmentSolver::new();
        prop_assert_eq!(solver.solve(&g1).to_vec(), maximum_weight_matching(&g1));
        prop_assert!(
            (solver.last_weight() - matching_weight(&g1, solver.matching())).abs() == 0.0
        );
        // Buffer reuse across differently-shaped graphs must not leak state.
        prop_assert_eq!(solver.solve(&g2).to_vec(), maximum_weight_matching(&g2));
        prop_assert_eq!(solver.solve(&g1).to_vec(), maximum_weight_matching(&g1));
    }

    #[test]
    fn greedy_scratch_bit_identical_to_graph_greedy(
        (nl, nr, edges, cols, _d) in topology_and_columns()
    ) {
        let mut scratch = GreedyScratch::new();
        let mut out = Vec::new();
        for col in &cols {
            let tuples: Vec<(u32, u32, f64)> = edges
                .iter()
                .zip(col)
                .map(|(&(u, v), &w)| (u, v, w))
                .collect();
            let g = WeightedBipartiteGraph::from_tuples(nl, nr, tuples);
            scratch.greedy_on(nl, nr, &edges, col, &mut out);
            prop_assert_eq!(&out, &greedy_matching(&g));
        }
    }

    #[test]
    fn bvn_decomposition_reconstructs(
        n in 2u32..7,
        raw in prop::collection::vec((0u32..7, 0u32..7, 1u64..200), 0..10),
    ) {
        let mut seen = std::collections::HashSet::new();
        let demand: Vec<(u32, u32, u64)> = raw
            .into_iter()
            .filter_map(|(r, c, d)| {
                let (r, c) = (r % n, c % n);
                (r != c && seen.insert((r, c))).then_some((r, c, d))
            })
            .collect();
        let terms = bvn::decompose(n, &demand);
        let m = bvn::reconstruct(n, &terms);
        for &(r, c, d) in &demand {
            prop_assert_eq!(m[r as usize][c as usize], d);
        }
        let total: u64 = m.iter().flatten().sum();
        prop_assert_eq!(total, demand.iter().map(|&(_, _, d)| d).sum::<u64>());
        // Each term is a valid matching.
        for t in &terms {
            prop_assert!(is_matching(&t.matching));
            prop_assert!(t.duration > 0);
        }
    }
}
