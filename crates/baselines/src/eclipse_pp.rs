//! **Eclipse++-style routing**: scheduling the hops of multi-hop traffic over
//! a *fixed* configuration sequence — the role Eclipse++ plays in [36] and
//! in the paper's Eclipse-Based baseline.
//!
//! Where the slot-level simulator routes myopically (per-slot VOQ
//! contention), this router plans *offline* on the schedule's time-expanded
//! structure: each configuration `k` offers `α_k` packet-slots on every link
//! of `M_k`; a packet at hop position `p` of its route can take hop `p`
//! during configuration `k` if capacity remains and its previous hop
//! happened in an earlier configuration (or an earlier slot of the same one,
//! when chaining is allowed). Flows are processed in the paper's fixed
//! priority order (weight, then flow ID), each routed as early as feasible.
//!
//! The result upper-bounds what the greedy simulator achieves on the same
//! schedule (it looks ahead; the simulator cannot), so the Eclipse-Based
//! baseline can be reported from its best side. On the paper's workloads the
//! two agree closely — the baseline's losses come from the *schedule*, not
//! the router (see `eclipse_based_ignores_hop_ordering` in
//! [`crate::eclipse`]).

use octopus_net::Schedule;
use octopus_sim::ResolvedFlow;
use octopus_traffic::{HopWeighting, Weight};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Outcome of routing a load over a fixed schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingReport {
    /// Packets in the load.
    pub total_packets: u64,
    /// Packets whose final hop was scheduled.
    pub delivered: u64,
    /// Packet-hops scheduled (unweighted).
    pub hops_scheduled: u64,
    /// ψ of the routing (weighted scheduled hops).
    pub psi: f64,
    /// Link-slots offered by the schedule.
    pub link_slots_offered: u64,
}

impl RoutingReport {
    /// Delivered fraction (0–1).
    pub fn delivered_fraction(&self) -> f64 {
        if self.total_packets == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.total_packets as f64
    }

    /// Link utilization (0–1).
    pub fn link_utilization(&self) -> f64 {
        if self.link_slots_offered == 0 {
            return 0.0;
        }
        self.hops_scheduled as f64 / self.link_slots_offered as f64
    }
}

/// Plans hop-by-hop service of `flows` over the fixed `schedule`.
///
/// `chain_within_config` mirrors the simulator's forwarding modes: when
/// true, a packet may take consecutive hops in the *same* configuration
/// (feasible when the configuration holds both links; capacity still binds),
/// matching `ForwardingMode::WithinConfig`; when false, each hop needs a
/// strictly later configuration (`NextConfigOnly`).
pub fn route_over_schedule(
    flows: &[ResolvedFlow],
    schedule: &Schedule,
    weighting: HopWeighting,
    chain_within_config: bool,
) -> RoutingReport {
    // Remaining capacity per (config index, link).
    let mut capacity: Vec<HashMap<(u32, u32), u64>> = schedule
        .configs()
        .iter()
        .map(|c| {
            c.matching
                .links()
                .iter()
                .map(|&(i, j)| ((i.0, j.0), c.alpha))
                .collect()
        })
        .collect();
    let num_configs = schedule.len();

    // Process flows by (weight of the whole packet = hop 0's class route
    // weight, then flow id) — the paper's priority convention.
    let mut order: Vec<usize> = (0..flows.len()).collect();
    order.sort_by(|&a, &b| {
        let wa = Weight(weighting.hop_weight(flows[a].route.hops(), 0).value());
        let wb = Weight(weighting.hop_weight(flows[b].route.hops(), 0).value());
        wb.cmp(&wa)
            .then(flows[a].flow.cmp(&flows[b].flow))
            .then(a.cmp(&b))
    });

    let mut delivered = 0u64;
    let mut hops_scheduled = 0u64;
    let mut psi = 0.0f64;

    for fi in order {
        let f = &flows[fi];
        if f.size == 0 {
            continue;
        }
        let hops = f.route.hops();
        // Worklist of packet groups `(position, eligible-from config, count)`;
        // packets march configurations earliest-first, splitting as capacity
        // allows. Packets that exhaust the schedule mid-route are stranded.
        let mut groups: Vec<(u32, usize, u64)> = vec![(0, 0, f.size)];
        while let Some((pos, from_cfg, mut count)) = groups.pop() {
            if pos == hops {
                delivered += count;
                continue;
            }
            let (a, b) = f.route.hop(pos);
            let link = (a.0, b.0);
            let mut k = from_cfg;
            while k < num_configs && count > 0 {
                if let Some(cap) = capacity[k].get_mut(&link) {
                    let take = (*cap).min(count);
                    if take > 0 {
                        *cap -= take;
                        count -= take;
                        hops_scheduled += take;
                        psi += weighting.hop_weight(hops, pos).value() * take as f64;
                        let next_from = if chain_within_config { k } else { k + 1 };
                        groups.push((pos + 1, next_from, take));
                    }
                }
                k += 1;
            }
        }
    }

    RoutingReport {
        total_packets: flows.iter().map(|f| f.size).sum(),
        delivered,
        hops_scheduled,
        psi,
        link_slots_offered: schedule.link_slots(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_net::{Configuration, Matching};
    use octopus_sim::{SimConfig, Simulator};
    use octopus_traffic::{FlowId, Route};

    fn sched(parts: &[(u64, &[(u32, u32)])]) -> Schedule {
        Schedule::from(
            parts
                .iter()
                .map(|&(alpha, links)| {
                    Configuration::new(Matching::new_free(links.iter().copied()).unwrap(), alpha)
                })
                .collect::<Vec<_>>(),
        )
    }

    fn flow(id: u64, size: u64, route: &[u32]) -> ResolvedFlow {
        ResolvedFlow {
            flow: FlowId(id),
            size,
            route: Route::from_ids(route.iter().copied()).unwrap(),
        }
    }

    #[test]
    fn routes_fixed_route_over_ordered_configs() {
        let flows = vec![flow(1, 30, &[0, 1, 2])];
        let schedule = sched(&[(30, &[(0, 1)]), (30, &[(1, 2)])]);
        let r = route_over_schedule(&flows, &schedule, HopWeighting::Uniform, false);
        assert_eq!(r.delivered, 30);
        assert_eq!(r.hops_scheduled, 60);
        assert!((r.psi - 30.0).abs() < 1e-9);
        assert!((r.link_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_order_configs_strand_packets_without_chaining() {
        // Second hop's configuration comes FIRST: without chaining nothing
        // completes; hop 1 still gets scheduled.
        let flows = vec![flow(1, 10, &[0, 1, 2])];
        let schedule = sched(&[(10, &[(1, 2)]), (10, &[(0, 1)])]);
        let r = route_over_schedule(&flows, &schedule, HopWeighting::Uniform, false);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.hops_scheduled, 10, "first hop scheduled in config 2");
    }

    #[test]
    fn chaining_uses_same_config_for_consecutive_hops() {
        let flows = vec![flow(1, 10, &[0, 1, 2])];
        let schedule = sched(&[(12, &[(0, 1), (1, 2)])]);
        let with = route_over_schedule(&flows, &schedule, HopWeighting::Uniform, true);
        assert_eq!(with.delivered, 10);
        let without = route_over_schedule(&flows, &schedule, HopWeighting::Uniform, false);
        assert_eq!(without.delivered, 0);
    }

    #[test]
    fn capacity_is_shared_between_flows_by_priority() {
        // Both flows need (0,1) but only 10 slots exist; the 1-hop flow
        // (higher weight) wins despite the higher id.
        let flows = vec![flow(1, 10, &[0, 1, 2]), flow(2, 10, &[0, 1])];
        let schedule = sched(&[(10, &[(0, 1)])]);
        let r = route_over_schedule(&flows, &schedule, HopWeighting::Uniform, false);
        assert_eq!(r.delivered, 10, "the direct flow is fully served");
        assert_eq!(r.hops_scheduled, 10);
    }

    #[test]
    fn planner_dominates_greedy_simulator_on_lookahead_instances() {
        // A trap for the myopic simulator: flow 2 (same weight class, lower
        // id... reversed: higher priority) eats the early capacity the other
        // flow needed. The offline router cannot do worse than the sim.
        let flows = vec![flow(1, 20, &[0, 1, 2]), flow(2, 20, &[3, 1])];
        let schedule = sched(&[(20, &[(0, 1)]), (20, &[(3, 1)]), (20, &[(1, 2)])]);
        let router = route_over_schedule(&flows, &schedule, HopWeighting::Uniform, false);
        let sim = Simulator::new(
            None,
            flows.clone(),
            SimConfig {
                delta: 0,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let simulated = sim.run(&schedule).unwrap();
        assert!(router.delivered >= simulated.delivered);
        assert_eq!(router.delivered, 40);
    }

    #[test]
    fn empty_inputs() {
        let r = route_over_schedule(&[], &Schedule::new(), HopWeighting::Uniform, false);
        assert_eq!(r.total_packets, 0);
        assert_eq!(r.delivered_fraction(), 0.0);
        let flows = vec![flow(1, 5, &[0, 1])];
        let r = route_over_schedule(&flows, &Schedule::new(), HopWeighting::Uniform, false);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.total_packets, 5);
    }
}
