//! # octopus-baselines
//!
//! The comparison points of the Octopus paper's evaluation (§8):
//!
//! * [`one_hop`] — a faithful re-implementation of **Eclipse**
//!   (Venkatakrishnan et al., SIGMETRICS 2016): the greedy one-hop
//!   circuit scheduler that Octopus generalizes. Exposed as a generic
//!   weighted one-hop scheduler so both the Eclipse-Based baseline and the
//!   UB upper bound share one engine.
//! * [`eclipse`] — the **Eclipse-Based** baseline: project the multi-hop
//!   load onto its unordered one-hop demands `T^one`, schedule those with
//!   Eclipse, then route the *real* multi-hop traffic over the resulting
//!   configuration sequence (the role Eclipse++ plays in the paper; routing
//!   happens in `octopus-sim`, with the same VOQ priority rule used
//!   everywhere; [`eclipse_pp`] additionally offers an offline
//!   earliest-feasible planner over the fixed schedule — the literal
//!   Eclipse++ role).
//! * [`ub`] — the **UB** upper bound: Eclipse over `T^one` with ψ-weights,
//!   counting a packet as delivered only once *all* of its hops have been
//!   served (in any order), plus the *absolute* hop-capacity bound.
//! * [`rotornet`] — the traffic-agnostic **RotorNet** schedule (Mellette et
//!   al., SIGCOMM 2017): round-robin through a fixed family of matchings
//!   covering the complete fabric, each held for a fixed duration.
//! * [`solstice`] — the **Solstice** hybrid scheduler (Liu et al., CoNEXT
//!   2015): stuffing + threshold-scanned perfect matchings, the historical
//!   one-hop ancestor the paper cites in §2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eclipse;
pub mod eclipse_pp;
pub mod one_hop;
pub mod rotornet;
pub mod solstice;
pub mod ub;

pub use eclipse::{eclipse_based_schedule, eclipse_schedule};
pub use eclipse_pp::{route_over_schedule, RoutingReport};
pub use one_hop::{one_hop_schedule, OneHopDemand, OneHopOutput};
pub use rotornet::rotornet_schedule;
pub use solstice::{solstice, SolsticeOutput};
pub use ub::{absolute_upper_bound, ub_evaluate, UbReport};
