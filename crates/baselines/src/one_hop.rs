//! The generic weighted one-hop greedy scheduler — Eclipse's core.
//!
//! For one-hop traffic, Octopus's machinery *is* Eclipse: iteratively pick
//! the configuration `(M, α)` with maximum served-weight per unit cost,
//! where serving a link just drains its demand. This module runs that loop
//! on explicit one-hop demands with caller-chosen per-packet weights, and
//! reports how many packets of **each individual demand** were served —
//! which is what the UB upper bound needs to decide whether all hops of a
//! multi-hop packet were covered.

use octopus_core::{
    AlphaSearch, BipartiteFabric, CandidateExtension, ExactKernel, LinkQueue, LinkQueues,
    MatchingKind, ScheduleEngine, SearchPolicy, TrafficSource,
};
use octopus_net::{Configuration, NodeId, Schedule};
use octopus_traffic::Weight;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One one-hop demand: `size` packets of per-packet `weight` on link
/// `(src, dst)`. The `tag` survives into the per-demand service report
/// (callers use it to map hops back to multi-hop flows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OneHopDemand {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Packets demanded.
    pub size: u64,
    /// Per-packet weight (1.0 for plain Eclipse; `1/k` for the UB run).
    pub weight: f64,
    /// Caller-chosen identifier; also the priority tie-breaker (lower tag =
    /// higher priority), mirroring the flow-ID rule.
    pub tag: u64,
}

/// Result of a one-hop scheduling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OneHopOutput {
    /// The chosen configuration sequence (total cost ≤ window).
    pub schedule: Schedule,
    /// Packets served per demand, indexed like the input slice.
    pub served: Vec<u64>,
    /// Total served weight (the run's ψ).
    pub psi: f64,
}

/// Runs the Eclipse greedy loop over one-hop demands.
///
/// Each iteration selects the `(M, α)` maximizing served weight per unit
/// cost (`Δ` included), then drains up to α packets per matched link in
/// (weight, tag) priority order — exactly Octopus restricted to 𝒟 = 1.
pub fn one_hop_schedule(
    n: u32,
    demands: &[OneHopDemand],
    delta: u64,
    window: u64,
    alpha_search: AlphaSearch,
    matching: MatchingKind,
) -> OneHopOutput {
    // Demand indices per link, pre-sorted by (weight desc, tag asc).
    let mut by_link: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
    for (idx, d) in demands.iter().enumerate() {
        if d.size > 0 && d.weight > 0.0 && d.src != d.dst {
            by_link.entry((d.src.0, d.dst.0)).or_default().push(idx);
        }
    }
    for list in by_link.values_mut() {
        list.sort_by(|&a, &b| {
            Weight(demands[b].weight)
                .cmp(&Weight(demands[a].weight))
                .then(demands[a].tag.cmp(&demands[b].tag))
                .then(a.cmp(&b))
        });
    }

    let source = DemandSource {
        demands,
        by_link,
        remaining: demands.iter().map(|d| d.size).collect(),
        served: vec![0u64; demands.len()],
        psi: 0.0,
    };
    let fabric = BipartiteFabric { kind: matching };
    let policy = SearchPolicy {
        search: alpha_search,
        parallel: false,
        prefer_larger_alpha: false,
        kernel: ExactKernel::Hungarian,
    };
    let mut engine = ScheduleEngine::new(source, n, delta);
    let mut schedule = Schedule::new();
    let mut used = 0u64;

    while !engine.is_drained() && used + delta < window {
        let budget = window - used - delta;
        let Some(choice) = engine.select(&fabric, budget, CandidateExtension::None, &policy) else {
            break;
        };
        let Ok(m) = engine.commit(&fabric, &choice.matching, choice.alpha) else {
            // Unreachable with the shipped kernels (they emit matchings);
            // stop extending the schedule rather than panicking.
            debug_assert!(false, "kernel output failed to realize");
            break;
        };
        schedule.push(Configuration::new(m, choice.alpha));
        used += choice.alpha + delta;
    }

    let source = engine.into_source();
    OneHopOutput {
        schedule,
        served: source.served,
        psi: source.psi,
    }
}

/// [`TrafficSource`] over explicit one-hop demands. Serving a link only
/// drains that link's own demands, so the dirty set of a commit is exactly
/// the matched links — the engine re-derives those queues and leaves the
/// rest of the snapshot untouched.
struct DemandSource<'a> {
    demands: &'a [OneHopDemand],
    /// Demand indices per link, sorted by (weight desc, tag asc) — the
    /// priority order packets drain in.
    by_link: HashMap<(u32, u32), Vec<usize>>,
    remaining: Vec<u64>,
    served: Vec<u64>,
    psi: f64,
}

impl TrafficSource for DemandSource<'_> {
    fn snapshot_queues(&self, n: u32) -> LinkQueues {
        let rem = &self.remaining;
        LinkQueues::from_weighted_counts(
            n,
            self.by_link.iter().flat_map(|(&link, idxs)| {
                idxs.iter().filter_map(move |&i| {
                    (rem[i] > 0).then_some((link, self.demands[i].weight, rem[i]))
                })
            }),
        )
    }

    fn apply_served(&mut self, budgets: &[(NodeId, NodeId, u64)]) -> Option<Vec<(u32, u32)>> {
        let mut dirty = Vec::with_capacity(budgets.len());
        for &(i, j, alpha) in budgets {
            let Some(idxs) = self.by_link.get(&(i.0, j.0)) else {
                continue;
            };
            let mut left = alpha;
            for &idx in idxs {
                if left == 0 {
                    break;
                }
                let take = self.remaining[idx].min(left);
                if take == 0 {
                    continue;
                }
                self.remaining[idx] -= take;
                self.served[idx] += take;
                left -= take;
                self.psi += self.demands[idx].weight * take as f64;
            }
            dirty.push((i.0, j.0));
        }
        dirty.sort_unstable();
        dirty.dedup();
        Some(dirty)
    }

    fn refresh_link(&self, link: (u32, u32)) -> Option<LinkQueue> {
        let idxs = self.by_link.get(&link)?;
        LinkQueue::from_weighted_counts(
            idxs.iter()
                .map(|&i| (self.demands[i].weight, self.remaining[i])),
        )
    }

    fn is_drained(&self) -> bool {
        self.remaining.iter().all(|&r| r == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(src: u32, dst: u32, size: u64, weight: f64, tag: u64) -> OneHopDemand {
        OneHopDemand {
            src: NodeId(src),
            dst: NodeId(dst),
            size,
            weight,
            tag,
        }
    }

    #[test]
    fn serves_parallel_demands_in_one_configuration() {
        let demands = vec![d(0, 1, 30, 1.0, 0), d(2, 3, 30, 1.0, 1)];
        let out = one_hop_schedule(
            4,
            &demands,
            5,
            1_000,
            AlphaSearch::Exhaustive,
            MatchingKind::Exact,
        );
        assert_eq!(out.served, vec![30, 30]);
        assert_eq!(out.schedule.len(), 1);
        assert!((out.psi - 60.0).abs() < 1e-9);
    }

    #[test]
    fn priority_by_weight_then_tag_on_shared_link() {
        // Same link, limited window: high-weight demand served first.
        let demands = vec![d(0, 1, 50, 0.5, 0), d(0, 1, 50, 1.0, 1)];
        // Window fits roughly one 50-slot configuration (delta 10).
        let out = one_hop_schedule(
            2,
            &demands,
            10,
            61,
            AlphaSearch::Exhaustive,
            MatchingKind::Exact,
        );
        assert_eq!(out.served[1], 50, "weight-1.0 demand first");
        assert!(out.served[0] <= 1);
    }

    #[test]
    fn tag_breaks_ties() {
        let demands = vec![d(0, 1, 50, 1.0, 7), d(0, 1, 50, 1.0, 3)];
        let out = one_hop_schedule(
            2,
            &demands,
            0,
            50,
            AlphaSearch::Exhaustive,
            MatchingKind::Exact,
        );
        assert_eq!(out.served, vec![0, 50]);
    }

    #[test]
    fn window_respected() {
        let demands = vec![d(0, 1, 1_000, 1.0, 0)];
        let out = one_hop_schedule(
            2,
            &demands,
            10,
            100,
            AlphaSearch::Exhaustive,
            MatchingKind::Exact,
        );
        assert!(out.schedule.total_cost(10) <= 100);
        assert_eq!(out.served[0], 90);
    }

    #[test]
    fn contending_links_split_across_configurations() {
        // (0,1) and (0,2) share the out-port: two configurations needed.
        let demands = vec![d(0, 1, 20, 1.0, 0), d(0, 2, 20, 1.0, 1)];
        let out = one_hop_schedule(
            3,
            &demands,
            2,
            1_000,
            AlphaSearch::Exhaustive,
            MatchingKind::Exact,
        );
        assert_eq!(out.served, vec![20, 20]);
        assert!(out.schedule.len() >= 2);
    }

    #[test]
    fn empty_demands() {
        let out = one_hop_schedule(3, &[], 2, 100, AlphaSearch::Exhaustive, MatchingKind::Exact);
        assert!(out.schedule.is_empty());
        assert_eq!(out.psi, 0.0);
    }
}
