//! The **RotorNet** baseline (§8, Fig 8).
//!
//! RotorNet (Mellette et al., SIGCOMM 2017) is traffic-agnostic: rotor
//! switches cycle through a fixed family of matchings that together cover
//! the complete fabric, each held for a fixed duration (the paper uses
//! `10·Δ`, following ProjecToR's convention). Applied to the MHS problem it
//! "assumes availability of all edges anyway" — the schedule may activate
//! links outside the fabric graph; they simply carry nothing.

use octopus_net::{topology, Configuration, Schedule};

/// Builds the RotorNet round-robin schedule for an `n`-node fabric, window
/// `window`, reconfiguration delay `delta`, holding each matching for
/// `slots_per_matching` slots (the paper's setting: `10·Δ`; pass 0 to use
/// that default, with a floor of 1 slot for Δ = 0).
///
/// Matchings come from the round-robin tournament family and repeat
/// cyclically until the window is exhausted; the last configuration is
/// truncated to fit.
///
/// ```
/// use octopus_baselines::rotornet_schedule;
/// let s = rotornet_schedule(8, 10, 1_000, 0);
/// assert!(s.total_cost(10) <= 1_000);
/// assert_eq!(s.configs()[0].alpha, 100); // 10·Δ per matching
/// ```
pub fn rotornet_schedule(n: u32, delta: u64, window: u64, slots_per_matching: u64) -> Schedule {
    let hold = if slots_per_matching == 0 {
        (10 * delta).max(1)
    } else {
        slots_per_matching
    };
    let family = topology::round_robin_matchings(n);
    let mut schedule = Schedule::new();
    if family.is_empty() {
        return schedule;
    }
    let mut used = 0u64;
    let mut idx = 0usize;
    while used + delta < window {
        let alpha = hold.min(window - used - delta);
        schedule.push(Configuration::new(
            family[idx % family.len()].clone(),
            alpha,
        ));
        used += alpha + delta;
        idx += 1;
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_sim::{ResolvedFlow, SimConfig, Simulator};
    use octopus_traffic::{FlowId, Route};

    #[test]
    fn fills_window_with_fixed_durations() {
        let s = rotornet_schedule(6, 10, 1_000, 0);
        assert!(s.total_cost(10) <= 1_000);
        // All but possibly the last configuration hold 100 slots.
        for c in &s.configs()[..s.len() - 1] {
            assert_eq!(c.alpha, 100);
        }
        // Cycles through 5 distinct matchings for n=6.
        let distinct: std::collections::HashSet<_> = s
            .configs()
            .iter()
            .map(|c| c.matching.links().to_vec())
            .collect();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn covers_every_pair_eventually() {
        let s = rotornet_schedule(4, 1, 1_000, 0);
        let links = s.links_used();
        assert_eq!(links.len(), 12, "all ordered pairs of 4 nodes");
    }

    #[test]
    fn delta_zero_still_progresses() {
        let s = rotornet_schedule(4, 0, 50, 0);
        assert!(!s.is_empty());
        assert!(s.total_cost(0) <= 50);
    }

    #[test]
    fn serves_direct_traffic_agnostically() {
        // One flow (0 -> 1): RotorNet eventually activates (0,1) and delivers.
        let s = rotornet_schedule(4, 2, 500, 0);
        let flows = vec![ResolvedFlow {
            flow: FlowId(1),
            size: 15,
            route: Route::from_ids([0, 1]).unwrap(),
        }];
        let sim = Simulator::new(
            None,
            flows,
            SimConfig {
                delta: 2,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let r = sim.run(&s).unwrap();
        assert_eq!(r.delivered, 15);
        // Utilization is terrible by construction: most offered link-slots
        // carry nothing.
        assert!(r.link_utilization() < 0.05);
    }
}
