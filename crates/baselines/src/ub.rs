//! The paper's two upper bounds (§8 "Upper Bounds").
//!
//! * **Absolute bound**: at most `n` links can be active per slot, so at
//!   most `n·W` packet-hops can be traversed in the window; dividing by the
//!   load's demanded packet-hops caps the deliverable fraction (≈66% for the
//!   generated loads, ≈100% for the trace-like loads).
//! * **UB**: run Eclipse over the unordered one-hop projection `T^one` with
//!   ψ-weights (each hop of a `k`-hop flow weighs `1/k`) — fewer constraints
//!   than the real problem plus the best possible approximation ratio, so it
//!   tracks "the best achievable performance by a polynomial algorithm". A
//!   packet counts as delivered only when **all** its hops have been served
//!   (in any order).

use crate::one_hop::{one_hop_schedule, OneHopDemand};
use octopus_core::{AlphaSearch, MatchingKind, OctopusConfig};
use octopus_net::{Network, Schedule};
use octopus_traffic::TrafficLoad;
use serde::{Deserialize, Serialize};

/// The UB run's results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UbReport {
    /// Packets whose every hop was served, summed over flows.
    pub delivered: u64,
    /// Total packets in the load.
    pub total_packets: u64,
    /// The ψ value of the run (served hop-weights).
    pub psi: f64,
    /// Packet-hops served (unweighted).
    pub hops_served: u64,
    /// Link-slots offered by the UB schedule.
    pub link_slots_offered: u64,
    /// The schedule the UB algorithm produced (for inspection).
    pub schedule: Schedule,
}

impl UbReport {
    /// Delivered fraction (0–1).
    pub fn delivered_fraction(&self) -> f64 {
        if self.total_packets == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.total_packets as f64
    }

    /// Link utilization (0–1), as the paper computes it for UB.
    pub fn link_utilization(&self) -> f64 {
        if self.link_slots_offered == 0 {
            return 0.0;
        }
        self.hops_served as f64 / self.link_slots_offered as f64
    }

    /// Delivered packets as a fraction of ψ (Fig 7a's metric).
    pub fn delivered_over_psi(&self) -> f64 {
        if self.psi <= 0.0 {
            return 0.0;
        }
        self.delivered as f64 / self.psi
    }
}

/// The absolute upper bound on the deliverable fraction.
///
/// At most `n` links are active per slot, so at most `n·W` packet-hops fit
/// in the window; the most packets that budget can deliver is obtained by
/// serving the cheapest (shortest-route) packets first. This reproduces the
/// paper's arithmetic: 10⁶ hop-capacity against 10⁶ packets split equally
/// into 1/2/3-hop routes delivers at most the 1-hop third (⅓·10⁶ hops) plus
/// the 2-hop third (⅔·10⁶ hops) — 66% of the packets.
pub fn absolute_upper_bound(net: &Network, load: &TrafficLoad, window: u64) -> f64 {
    let total = load.total_packets();
    if total == 0 {
        return 1.0;
    }
    let mut budget = (net.num_nodes() as u64).saturating_mul(window);
    // Cheapest packets first.
    let mut per_hops: Vec<(u64, u64)> = Vec::new(); // (hops, packets)
    for f in load.flows() {
        per_hops.push((f.route().hops() as u64, f.size));
    }
    per_hops.sort_unstable();
    let mut delivered = 0u64;
    for (hops, packets) in per_hops {
        if budget == 0 {
            break;
        }
        let affordable = (budget / hops).min(packets);
        delivered += affordable;
        budget -= affordable * hops;
    }
    (delivered as f64 / total as f64).min(1.0)
}

/// Runs the UB algorithm on a single-route multi-hop load.
///
/// # Panics
/// Panics if a flow has multiple candidate routes (project first).
pub fn ub_evaluate(net: &Network, load: &TrafficLoad, cfg: &OctopusConfig) -> UbReport {
    // T^one with psi-weights: hop of a k-hop flow weighs 1/k.
    let mut demands = Vec::new();
    let mut spans: Vec<(usize, usize)> = Vec::new(); // demand range per flow
    for (fi, f) in load.flows().iter().enumerate() {
        let r = f.route();
        let start = demands.len();
        for x in 0..r.hops() {
            let (a, b) = r.hop(x);
            demands.push(OneHopDemand {
                src: a,
                dst: b,
                size: f.size,
                weight: 1.0 / r.hops() as f64,
                tag: fi as u64,
            });
        }
        spans.push((start, demands.len()));
    }
    let out = one_hop_schedule(
        net.num_nodes(),
        &demands,
        cfg.delta,
        cfg.window,
        AlphaSearch::Exhaustive,
        MatchingKind::Exact,
    );
    let mut delivered = 0u64;
    for &(start, end) in &spans {
        if start == end {
            continue;
        }
        delivered += out.served[start..end].iter().copied().min().unwrap_or(0);
    }
    let hops_served: u64 = out.served.iter().sum();
    UbReport {
        delivered,
        total_packets: load.total_packets(),
        psi: out.psi,
        hops_served,
        link_slots_offered: out.schedule.link_slots(),
        schedule: out.schedule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_net::topology;
    use octopus_traffic::{Flow, FlowId, Route};

    fn cfg(window: u64, delta: u64) -> OctopusConfig {
        OctopusConfig {
            window,
            delta,
            ..OctopusConfig::default()
        }
    }

    #[test]
    fn absolute_bound_matches_paper_arithmetic() {
        // The paper's 66% derivation: packets split equally into 1/2/3-hop
        // routes with hop capacity equal to the packet count. Cheapest
        // first: the 1-hop third (90 hops) and the 2-hop third (180 hops)
        // exactly exhaust a 270-hop budget, so two thirds are deliverable.
        let net = topology::complete(4);
        let load = TrafficLoad::new(vec![
            Flow::single(FlowId(1), 90, Route::from_ids([0, 1]).unwrap()),
            Flow::single(FlowId(2), 90, Route::from_ids([0, 1, 2]).unwrap()),
            Flow::single(FlowId(3), 90, Route::from_ids([0, 1, 2, 3]).unwrap()),
        ])
        .unwrap();
        // Capacity = 4 nodes × 68 slots = 272 hops (the 2 spare hops cannot
        // fit a 3-hop packet).
        let bound = absolute_upper_bound(&net, &load, 68);
        assert!((bound - 180.0 / 270.0).abs() < 1e-9, "bound {bound}");
        // Generous window: everything fits.
        assert_eq!(absolute_upper_bound(&net, &load, 10_000), 1.0);
    }

    #[test]
    fn absolute_bound_serves_cheapest_first() {
        let net = topology::complete(4);
        let load = TrafficLoad::new(vec![
            Flow::single(FlowId(1), 10, Route::from_ids([0, 1, 2, 3]).unwrap()),
            Flow::single(FlowId(2), 10, Route::from_ids([0, 1]).unwrap()),
        ])
        .unwrap();
        // Budget 12 hops (n=4, W=3): 10 one-hop packets + 0 three-hop
        // packets (2 hops left < 3).
        assert!((absolute_upper_bound(&net, &load, 3) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ub_counts_only_fully_served_packets() {
        // Flow of 2 hops; tiny window serves only one hop fully.
        let net = topology::ring(3).unwrap();
        let load = TrafficLoad::new(vec![Flow::single(
            FlowId(1),
            40,
            Route::from_ids([0, 1, 2]).unwrap(),
        )])
        .unwrap();
        // Window fits one 40-slot configuration + delta: only one hop can be
        // served fully if the two hops can't share a matching... they CAN
        // share ((0,1),(1,2) is a matching), so both get served together.
        let full = ub_evaluate(&net, &load, &cfg(100, 10));
        assert_eq!(full.delivered, 40);
        // Window 45 with delta 10: one configuration of alpha <= 35.
        let partial = ub_evaluate(&net, &load, &cfg(45, 10));
        assert!(partial.delivered <= 35);
    }

    #[test]
    fn ub_dominates_feasible_schedulers_on_ordered_loads() {
        // UB ignores hop ordering, so it should (weakly) beat Octopus's
        // planned delivery on a load where ordering binds.
        let net = topology::complete(6);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
        let synth = octopus_traffic::synthetic::SyntheticConfig::paper_default(6, 300);
        let load = octopus_traffic::synthetic::generate(&synth, &net, &mut rng);
        let c = cfg(300, 10);
        let ub = ub_evaluate(&net, &load, &c);
        let oct = octopus_core::octopus(&net, &load, &c).unwrap();
        // Not a theorem (both are approximations), but holds with slack on
        // such instances; allow a small tolerance.
        assert!(
            ub.psi + 1e-9 >= 0.8 * oct.planned_psi,
            "UB psi {} vs Octopus psi {}",
            ub.psi,
            oct.planned_psi
        );
    }

    #[test]
    fn empty_load() {
        let net = topology::complete(3);
        let load = TrafficLoad::new(vec![]).unwrap();
        let ub = ub_evaluate(&net, &load, &cfg(100, 5));
        assert_eq!(ub.delivered, 0);
        assert_eq!(ub.delivered_fraction(), 0.0);
        assert_eq!(absolute_upper_bound(&net, &load, 100), 1.0);
    }
}
