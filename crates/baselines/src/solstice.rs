//! **Solstice** (Liu et al., CoNEXT 2015) — the greedy one-hop scheduler for
//! hybrid circuit/packet networks that the Octopus paper builds on
//! historically (§2 "One-Hop Traffic Load").
//!
//! Solstice minimizes *evacuation time*: stuff the demand matrix so all row
//! and column sums are equal, then repeatedly extract a perfect matching
//! that covers the largest entries (scanning thresholds by halving) and hold
//! it for the smallest covered demand. Small residual demand is left to the
//! packet switch.
//!
//! This implementation follows the published algorithm structure:
//!
//! 1. **Stuffing** adds virtual demand until the matrix is perfectly
//!    schedulable (all row/column sums equal); virtual packets occupy slots
//!    but do not count as goodput.
//! 2. Each round picks threshold `t = 2^k` (largest with a perfect matching
//!    among entries ≥ `t` in the stuffed matrix), holds that matching for
//!    the minimum covered entry, and subtracts.
//!
//! Exposed both as a schedule generator for one-hop demand matrices and as a
//! test consumer of the `octopus-matching` BvN/Hopcroft–Karp substrate.

use octopus_matching::{hopcroft_karp::hopcroft_karp, WeightedBipartiteGraph};
use octopus_net::{Configuration, Matching, Schedule};
use octopus_traffic::DemandMatrix;
use std::collections::BTreeMap;

/// Result of a Solstice run.
#[derive(Debug, Clone)]
pub struct SolsticeOutput {
    /// The configuration sequence (durations include only α; add Δ per
    /// configuration for wall-clock cost).
    pub schedule: Schedule,
    /// Real (non-virtual) demand served per configuration, summed.
    pub real_served: u64,
    /// Virtual (stuffed) demand that occupied slots.
    pub virtual_served: u64,
    /// Residual real demand left for the packet switch.
    pub residual: u64,
}

/// Runs Solstice on a one-hop demand matrix.
///
/// `window`/`delta` bound the schedule like everywhere else; `min_alpha`
/// stops emitting configurations whose duration no longer amortizes the
/// reconfiguration delay (the paper's "leave small stuff to the packet
/// switch" rule; a common choice is `delta`).
pub fn solstice(demand: &DemandMatrix, window: u64, delta: u64, min_alpha: u64) -> SolsticeOutput {
    let n = demand.n;
    // Real demand per pair.
    let mut real: BTreeMap<(u32, u32), u64> = demand
        .entries
        .iter()
        .filter(|&&(r, c, d)| d > 0 && r != c)
        .map(|&(r, c, d)| ((r, c), d))
        .collect();
    // Stuffed matrix = real + virtual.
    let mut virt: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    stuff(n, &real, &mut virt);

    let total =
        |m: &BTreeMap<(u32, u32), u64>, k: &(u32, u32)| -> u64 { m.get(k).copied().unwrap_or(0) };

    let mut schedule = Schedule::new();
    let mut used = 0u64;
    let mut real_served = 0u64;
    let mut virtual_served = 0u64;

    loop {
        if used + delta >= window {
            break;
        }
        let budget = window - used - delta;
        let max_entry = real
            .iter()
            .chain(virt.iter())
            .map(|(k, _)| total(&real, k) + total(&virt, k))
            .max()
            .unwrap_or(0);
        if max_entry == 0 {
            break;
        }
        // Largest power-of-two threshold admitting a perfect matching.
        let mut t = max_entry.next_power_of_two();
        if t > max_entry {
            t /= 2;
        }
        let mut chosen: Option<Vec<(u32, u32)>> = None;
        while t >= 1 {
            let combined: Vec<(u32, u32, f64)> = keys_with_at_least(&real, &virt, t);
            if combined.len() >= n as usize {
                let g = WeightedBipartiteGraph::from_tuples(n, n, combined);
                let m = hopcroft_karp(&g);
                if m.len() == n as usize {
                    chosen = Some(m);
                    break;
                }
            }
            t /= 2;
        }
        let matching = chosen.unwrap_or_else(|| {
            // No perfect matching at any threshold (imperfect stuffing):
            // fall back to a maximum-cardinality matching over everything.
            let g = WeightedBipartiteGraph::from_tuples(n, n, keys_with_at_least(&real, &virt, 1));
            hopcroft_karp(&g)
        });
        if matching.is_empty() {
            break;
        }
        let Some(alpha_full) = matching
            .iter()
            .map(|k| total(&real, k) + total(&virt, k))
            .min()
        else {
            debug_assert!(false, "emptiness checked above");
            break;
        };
        let alpha = alpha_full.min(budget);
        if alpha < min_alpha && !schedule.is_empty() {
            break; // remaining entries too small to amortize delta
        }
        if alpha == 0 {
            break;
        }
        for k in &matching {
            // Serve real demand first, then virtual filler.
            let mut left = alpha;
            if let Some(r) = real.get_mut(k) {
                let take = (*r).min(left);
                *r -= take;
                left -= take;
                real_served += take;
                if *r == 0 {
                    real.remove(k);
                }
            }
            if left > 0 {
                if let Some(v) = virt.get_mut(k) {
                    let take = (*v).min(left);
                    *v -= take;
                    virtual_served += take;
                    if *v == 0 {
                        virt.remove(k);
                    }
                }
            }
        }
        let Ok(m) = Matching::new_free(matching.iter().copied()) else {
            debug_assert!(false, "hopcroft-karp output is always a valid matching");
            break;
        };
        schedule.push(Configuration::new(m, alpha));
        used += alpha + delta;
    }

    SolsticeOutput {
        schedule,
        real_served,
        virtual_served,
        residual: real.values().sum(),
    }
}

fn keys_with_at_least(
    real: &BTreeMap<(u32, u32), u64>,
    virt: &BTreeMap<(u32, u32), u64>,
    t: u64,
) -> Vec<(u32, u32, f64)> {
    let mut combined: BTreeMap<(u32, u32), u64> = real.clone();
    for (&k, &v) in virt {
        *combined.entry(k).or_insert(0) += v;
    }
    combined
        .into_iter()
        .filter(|&(_, d)| d >= t)
        .map(|((r, c), d)| (r, c, d as f64))
        .collect()
}

/// Stuffing: adds virtual demand so every row and column sums to the same
/// value, making the matrix perfectly schedulable (Birkhoff–von Neumann),
/// while keeping the diagonal empty.
///
/// The placement is a transportation problem (row slack → column slack with
/// the diagonal forbidden), solved exactly with a small Dinic max-flow. If a
/// target is infeasible (all residual slack sits on one diagonal cell), the
/// target is raised and retried; each raise adds slack to *every* row and
/// column, so the Hall-type feasibility conditions are met after at most a
/// few rounds.
fn stuff(n: u32, real: &BTreeMap<(u32, u32), u64>, virt: &mut BTreeMap<(u32, u32), u64>) {
    if n < 2 {
        return;
    }
    let n = n as usize;
    let mut base_row = vec![0u64; n];
    let mut base_col = vec![0u64; n];
    for (&(r, c), &d) in real {
        base_row[r as usize] += d;
        base_col[c as usize] += d;
    }
    let mut target = base_row
        .iter()
        .chain(base_col.iter())
        .copied()
        .max()
        .unwrap_or(0);
    if target == 0 {
        return;
    }
    for _ in 0..64 {
        let row_slack: Vec<u64> = base_row.iter().map(|&x| target - x).collect();
        let col_slack: Vec<u64> = base_col.iter().map(|&x| target - x).collect();
        let need: u64 = row_slack.iter().sum();
        // Nodes: 0 = source, 1..=n rows, n+1..=2n cols, 2n+1 sink.
        let mut flow = Dinic::new(2 * n + 2);
        for (i, &s) in row_slack.iter().enumerate() {
            if s > 0 {
                flow.add_edge(0, 1 + i, s);
            }
        }
        for (j, &s) in col_slack.iter().enumerate() {
            if s > 0 {
                flow.add_edge(1 + n + j, 2 * n + 1, s);
            }
        }
        for (i, &rs) in row_slack.iter().enumerate() {
            for (j, &cs) in col_slack.iter().enumerate() {
                if i != j && rs > 0 && cs > 0 {
                    flow.add_edge(1 + i, 1 + n + j, rs.min(cs));
                }
            }
        }
        if flow.max_flow(0, 2 * n + 1) == need {
            virt.clear();
            for i in 0..n {
                for (to, f) in flow.flows_from(1 + i) {
                    if (1 + n..1 + 2 * n).contains(&to) && f > 0 {
                        *virt.entry((i as u32, (to - 1 - n) as u32)).or_insert(0) += f;
                    }
                }
            }
            return;
        }
        target += target.max(1); // double and retry
    }
    virt.clear(); // give up; the scheduler falls back to partial matchings
}

/// Minimal Dinic max-flow for the stuffing transportation problem.
struct Dinic {
    graph: Vec<Vec<usize>>,
    to: Vec<usize>,
    cap: Vec<u64>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    fn new(n: usize) -> Self {
        Dinic {
            graph: vec![Vec::new(); n],
            to: Vec::new(),
            cap: Vec::new(),
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: u64) {
        self.graph[from].push(self.to.len());
        self.to.push(to);
        self.cap.push(cap);
        self.graph[to].push(self.to.len());
        self.to.push(from);
        self.cap.push(0);
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.fill(-1);
        let mut q = std::collections::VecDeque::from([s]);
        self.level[s] = 0;
        while let Some(u) = q.pop_front() {
            for &e in &self.graph[u] {
                if self.cap[e] > 0 && self.level[self.to[e]] < 0 {
                    self.level[self.to[e]] = self.level[u] + 1;
                    q.push_back(self.to[e]);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, f: u64) -> u64 {
        if u == t {
            return f;
        }
        while self.iter[u] < self.graph[u].len() {
            let e = self.graph[u][self.iter[u]];
            let v = self.to[e];
            if self.cap[e] > 0 && self.level[v] == self.level[u] + 1 {
                let d = self.dfs(v, t, f.min(self.cap[e]));
                if d > 0 {
                    self.cap[e] -= d;
                    self.cap[e ^ 1] += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        let mut total = 0;
        while self.bfs(s, t) {
            self.iter.fill(0);
            loop {
                let f = self.dfs(s, t, u64::MAX);
                if f == 0 {
                    break;
                }
                total += f;
            }
        }
        total
    }

    /// Flow pushed along each original edge leaving `u` (reverse-edge cap).
    fn flows_from(&self, u: usize) -> Vec<(usize, u64)> {
        self.graph[u]
            .iter()
            .filter(|&&e| e % 2 == 0) // original edges only
            .map(|&e| (self.to[e], self.cap[e ^ 1]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(n: u32, entries: &[(u32, u32, u64)]) -> DemandMatrix {
        DemandMatrix::new(n, entries.iter().copied())
    }

    #[test]
    fn permutation_demand_is_one_configuration() {
        let d = dm(3, &[(0, 1, 40), (1, 2, 40), (2, 0, 40)]);
        let out = solstice(&d, 1_000, 10, 1);
        assert_eq!(out.schedule.len(), 1);
        assert_eq!(out.schedule.configs()[0].alpha, 40);
        assert_eq!(out.real_served, 120);
        assert_eq!(out.residual, 0);
    }

    #[test]
    fn skewed_demand_is_fully_evacuated() {
        let d = dm(
            4,
            &[(0, 1, 100), (0, 2, 0), (1, 0, 30), (2, 3, 55), (3, 2, 5)],
        );
        let out = solstice(&d, 10_000, 5, 1);
        assert_eq!(out.residual, 0, "window is generous: everything evacuates");
        assert_eq!(out.real_served, 190);
        // Virtual stuffing occupied some slots but never counts as goodput.
        out.schedule.validate(None).unwrap();
    }

    #[test]
    fn stuffed_matrix_has_equal_sums() {
        let real: BTreeMap<(u32, u32), u64> = [((0, 1), 10), ((1, 0), 4), ((2, 0), 7)]
            .into_iter()
            .collect();
        let mut virt = BTreeMap::new();
        stuff(3, &real, &mut virt);
        let mut row = [0u64; 3];
        let mut col = [0u64; 3];
        for (&(r, c), &d) in real.iter().chain(virt.iter()) {
            assert_ne!(r, c, "no diagonal stuffing");
            row[r as usize] += d;
            col[c as usize] += d;
        }
        // All sums equal a common target (>= the max original sum, 11;
        // this instance is diagonal-blocked at 11, so the target was raised).
        let t = row[0];
        assert!(t >= 11);
        assert!(row.iter().all(|&x| x == t), "rows {row:?}");
        assert!(col.iter().all(|&x| x == t), "cols {col:?}");
    }

    #[test]
    fn window_respected_and_min_alpha_cuts_tail() {
        let d = dm(3, &[(0, 1, 500), (1, 2, 3), (2, 0, 2)]);
        let out = solstice(&d, 100, 10, 10);
        assert!(out.schedule.total_cost(10) <= 100);
        // The 2-3 packet dribble is left to the packet switch once the big
        // flow is (partially) served.
        assert!(out.residual > 0);
    }

    #[test]
    fn empty_demand() {
        let d = dm(3, &[]);
        let out = solstice(&d, 100, 10, 1);
        assert!(out.schedule.is_empty());
        assert_eq!(out.real_served + out.virtual_served + out.residual, 0);
    }

    #[test]
    fn serves_like_eclipse_on_one_hop_loads() {
        // Both one-hop schedulers should evacuate a balanced load fully in a
        // generous window; Solstice may pay more reconfigurations.
        use crate::one_hop::OneHopDemand;
        use octopus_net::NodeId;
        let entries = [(0u32, 1u32, 60u64), (1, 2, 45), (2, 3, 80), (3, 0, 70)];
        let d = dm(4, &entries);
        let sol = solstice(&d, 10_000, 10, 1);
        assert_eq!(sol.residual, 0);
        let demands: Vec<OneHopDemand> = entries
            .iter()
            .enumerate()
            .map(|(i, &(r, c, size))| OneHopDemand {
                src: NodeId(r),
                dst: NodeId(c),
                size,
                weight: 1.0,
                tag: i as u64,
            })
            .collect();
        let ecl = crate::eclipse_schedule(4, &demands, 10, 10_000);
        assert_eq!(ecl.served.iter().sum::<u64>(), 255);
        assert_eq!(sol.real_served, 255);
    }
}

#[cfg(test)]
mod stuffing_property_tests {
    use super::*;

    #[test]
    fn stuffing_balances_random_matrices() {
        let mut state = 0x57ff_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let n = 2 + (next() % 8) as u32;
            let mut real: BTreeMap<(u32, u32), u64> = BTreeMap::new();
            for _ in 0..(next() % 12) {
                let r = next() as u32 % n;
                let c = next() as u32 % n;
                if r != c {
                    *real.entry((r, c)).or_insert(0) += 1 + next() % 200;
                }
            }
            let mut virt = BTreeMap::new();
            stuff(n, &real, &mut virt);
            if real.is_empty() {
                assert!(virt.is_empty());
                continue;
            }
            let mut row = vec![0u64; n as usize];
            let mut col = vec![0u64; n as usize];
            for (&(r, c), &d) in real.iter().chain(virt.iter()) {
                assert_ne!(r, c, "trial {trial}: diagonal stuffing");
                row[r as usize] += d;
                col[c as usize] += d;
            }
            let t = row[0];
            assert!(
                row.iter().all(|&x| x == t) && col.iter().all(|&x| x == t),
                "trial {trial}: unbalanced rows {row:?} cols {col:?} (real {real:?}, virt {virt:?})"
            );
        }
    }

    #[test]
    fn solstice_evacuates_random_loads_given_time() {
        let mut state = 0xe4acu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = 3 + (next() % 6) as u32;
            let mut entries = Vec::new();
            for _ in 0..(next() % 10) {
                let r = next() as u32 % n;
                let c = next() as u32 % n;
                if r != c {
                    entries.push((r, c, 1 + next() % 100));
                }
            }
            let d = DemandMatrix::new(n, entries);
            let out = solstice(&d, 1_000_000, 5, 1);
            assert_eq!(out.residual, 0, "generous window evacuates everything");
            assert_eq!(out.real_served, d.total());
            out.schedule.validate(None).unwrap();
        }
    }
}
