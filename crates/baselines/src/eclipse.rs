//! **Eclipse** and the **Eclipse-Based** baseline (§8 "Algorithms Compared").
//!
//! Eclipse [Venkatakrishnan et al., SIGMETRICS 2016] schedules *one-hop*
//! traffic; the paper's baseline applies it to multi-hop loads by:
//!
//! 1. computing the unordered one-hop projection `T^one` (every hop of every
//!    route becomes an independent one-hop demand, hop ordering ignored);
//! 2. running Eclipse over `T^one` to obtain a configuration sequence;
//! 3. routing the *real* multi-hop traffic over that fixed sequence
//!    (Eclipse++'s job in the paper; here the slot-level simulator's greedy
//!    VOQ routing, per DESIGN.md §5).
//!
//! The baseline's characteristic failure — configurations chosen without hop
//! ordering leave links idle when upstream hops haven't happened yet — is a
//! property of the schedule and reproduces regardless of the router.

use crate::one_hop::{one_hop_schedule, OneHopDemand, OneHopOutput};
use octopus_core::{AlphaSearch, MatchingKind, OctopusConfig, SchedError};
use octopus_net::{Network, Schedule};
use octopus_traffic::TrafficLoad;

/// Runs plain Eclipse over explicit one-hop demands (unit weights).
pub fn eclipse_schedule(n: u32, demands: &[OneHopDemand], delta: u64, window: u64) -> OneHopOutput {
    one_hop_schedule(
        n,
        demands,
        delta,
        window,
        AlphaSearch::Exhaustive,
        MatchingKind::Exact,
    )
}

/// Builds `T^one` with one demand per (flow, hop), unit weight, tagged by
/// flow position so service maps back to flows. Demands are emitted in
/// (flow, hop) order; the tag encodes the flow's index so ties keep the
/// flow-ID priority convention.
pub fn one_hop_demands(load: &TrafficLoad) -> Vec<OneHopDemand> {
    let mut out = Vec::new();
    for (fi, f) in load.flows().iter().enumerate() {
        let r = f.route();
        for x in 0..r.hops() {
            let (a, b) = r.hop(x);
            out.push(OneHopDemand {
                src: a,
                dst: b,
                size: f.size,
                weight: 1.0,
                tag: fi as u64,
            });
        }
    }
    out
}

/// The Eclipse-Based baseline's schedule for a multi-hop load: Eclipse over
/// `T^one`. Evaluate it on the real load with `octopus_sim`.
///
/// # Errors
/// Fails if any flow has several candidate routes (the projection needs
/// fixed routes) or uses a link absent from the fabric.
pub fn eclipse_based_schedule(
    net: &Network,
    load: &TrafficLoad,
    cfg: &OctopusConfig,
) -> Result<Schedule, SchedError> {
    load.validate(net)?;
    if let Some(f) = load.flows().iter().find(|f| f.routes.len() != 1) {
        return Err(SchedError::MultiRouteFlow(f.id));
    }
    let demands = one_hop_demands(load);
    let out = eclipse_schedule(net.num_nodes(), &demands, cfg.delta, cfg.window);
    Ok(out.schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_net::topology;
    use octopus_sim::{resolve, SimConfig, Simulator};
    use octopus_traffic::{Flow, FlowId, Route};

    fn cfg(window: u64, delta: u64) -> OctopusConfig {
        OctopusConfig {
            window,
            delta,
            ..OctopusConfig::default()
        }
    }

    #[test]
    fn projection_expands_hops() {
        let load = TrafficLoad::new(vec![
            Flow::single(FlowId(1), 10, Route::from_ids([0, 1, 2]).unwrap()),
            Flow::single(FlowId(2), 5, Route::from_ids([3, 0]).unwrap()),
        ])
        .unwrap();
        let d = one_hop_demands(&load);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].size, 10);
        assert_eq!(d[2].size, 5);
        assert_eq!(d[0].tag, 0);
        assert_eq!(d[1].tag, 0);
        assert_eq!(d[2].tag, 1);
    }

    #[test]
    fn eclipse_based_serves_one_hop_loads_perfectly() {
        // For pure one-hop traffic, Eclipse-Based == Octopus territory.
        let net = topology::complete(4);
        let load = TrafficLoad::new(vec![
            Flow::single(FlowId(1), 25, Route::from_ids([0, 1]).unwrap()),
            Flow::single(FlowId(2), 25, Route::from_ids([2, 3]).unwrap()),
        ])
        .unwrap();
        let schedule = eclipse_based_schedule(&net, &load, &cfg(500, 5)).unwrap();
        let sim = Simulator::new(
            Some(&net),
            resolve(&load).unwrap(),
            SimConfig {
                delta: 5,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let r = sim.run(&schedule).unwrap();
        assert_eq!(r.delivered, 50);
    }

    #[test]
    fn eclipse_based_ignores_hop_ordering() {
        // One 2-hop flow: T^one demands both hops with no ordering, so the
        // schedule may activate (1,2) before any packet reached node 1 —
        // utilization suffers, the paper's Figure 5 story.
        let net = topology::ring(3).unwrap();
        let load = TrafficLoad::new(vec![Flow::single(
            FlowId(1),
            40,
            Route::from_ids([0, 1, 2]).unwrap(),
        )])
        .unwrap();
        let schedule = eclipse_based_schedule(&net, &load, &cfg(10_000, 10)).unwrap();
        let sim = Simulator::new(
            Some(&net),
            resolve(&load).unwrap(),
            SimConfig {
                delta: 10,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let r = sim.run(&schedule).unwrap();
        // Every packet-hop demanded is offered exactly once, so wasted
        // link-slots mean utilization < 1 whenever ordering bites. With both
        // hops likely co-scheduled, chaining may still deliver some.
        assert!(r.link_utilization() <= 1.0);
        assert!(r.conserves_packets());
    }

    #[test]
    fn multi_route_load_rejected() {
        let net = topology::complete(3);
        let load = TrafficLoad::new(vec![Flow::new(
            FlowId(4),
            5,
            vec![
                Route::from_ids([0, 1]).unwrap(),
                Route::from_ids([0, 2, 1]).unwrap(),
            ],
        )
        .unwrap()])
        .unwrap();
        assert_eq!(
            eclipse_based_schedule(&net, &load, &cfg(100, 5)).err(),
            Some(SchedError::MultiRouteFlow(FlowId(4)))
        );
    }
}
