use octopus_traffic::FlowId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Measurements from one simulated schedule.
///
/// All the paper's evaluation metrics derive from this report:
///
/// * **packets delivered (%)** — [`SimReport::delivered_fraction`] (Figs 4,
///   6–10);
/// * **link utilization (%)** — [`SimReport::link_utilization`] (Figs 5, 8);
/// * **delivered as % of ψ** — [`SimReport::delivered_over_psi`] (Fig 7a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Packets in the input load.
    pub total_packets: u64,
    /// Packets that reached their final destination.
    pub delivered: u64,
    /// Packets that moved at least one hop but did not finish (stranded at
    /// an intermediate node when the schedule ended).
    pub stranded: u64,
    /// Packets that never left their source.
    pub never_moved: u64,
    /// Total packet-hop traversals (unweighted).
    pub hops_traversed: u64,
    /// The surrogate objective ψ: weighted packet-hops traversed.
    pub psi: f64,
    /// Σ over configurations of `α · |M|` — link-slots offered.
    pub link_slots_offered: u64,
    /// Slots consumed by the schedule, `Σ (α + Δ)`.
    pub slots_used: u64,
    /// Packets delivered per flow.
    pub delivered_per_flow: HashMap<FlowId, u64>,
    /// For every flow whose packets were **all** delivered: the slot at
    /// which its last packet arrived (flow completion time, measured from
    /// the schedule's start).
    pub completion_slot: HashMap<FlowId, u64>,
}

impl SimReport {
    /// Fraction (0–1) of packets delivered — the paper's primary metric.
    pub fn delivered_fraction(&self) -> f64 {
        if self.total_packets == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.total_packets as f64
    }

    /// Fraction (0–1) of offered link-slots that carried a packet — the
    /// paper's link-utilization metric ("ratio of total number of packets
    /// traversed to the sum of the number of active links over all time
    /// slots").
    pub fn link_utilization(&self) -> f64 {
        if self.link_slots_offered == 0 {
            return 0.0;
        }
        self.hops_traversed as f64 / self.link_slots_offered as f64
    }

    /// Delivered packets as a fraction of the objective value ψ (Fig 7a):
    /// close to 1 means few packets were left stranded mid-route.
    pub fn delivered_over_psi(&self) -> f64 {
        if self.psi <= 0.0 {
            return 0.0;
        }
        self.delivered as f64 / self.psi
    }

    /// Sanity invariant: every packet is delivered, stranded, or unmoved.
    pub fn conserves_packets(&self) -> bool {
        self.delivered + self.stranded + self.never_moved == self.total_packets
    }

    /// Mean flow completion time over fully-completed flows (slots), or
    /// `None` when no flow completed — the latency-side metric of
    /// ProjecToR-style evaluations.
    pub fn mean_fct(&self) -> Option<f64> {
        if self.completion_slot.is_empty() {
            return None;
        }
        Some(
            self.completion_slot
                .values()
                .map(|&s| s as f64)
                .sum::<f64>()
                / self.completion_slot.len() as f64,
        )
    }

    /// Median flow completion time over fully-completed flows (slots).
    pub fn median_fct(&self) -> Option<u64> {
        if self.completion_slot.is_empty() {
            return None;
        }
        let mut v: Vec<u64> = self.completion_slot.values().copied().collect();
        v.sort_unstable();
        Some(v[v.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimReport {
        SimReport {
            total_packets: 100,
            delivered: 60,
            stranded: 10,
            never_moved: 30,
            hops_traversed: 130,
            psi: 65.0,
            link_slots_offered: 200,
            slots_used: 300,
            delivered_per_flow: HashMap::new(),
            completion_slot: HashMap::new(),
        }
    }

    #[test]
    fn fct_metrics() {
        let mut r = base();
        assert_eq!(r.mean_fct(), None);
        r.completion_slot.insert(octopus_traffic::FlowId(1), 100);
        r.completion_slot.insert(octopus_traffic::FlowId(2), 200);
        r.completion_slot.insert(octopus_traffic::FlowId(3), 400);
        assert!((r.mean_fct().unwrap() - 233.333).abs() < 0.01);
        assert_eq!(r.median_fct(), Some(200));
    }

    #[test]
    fn derived_metrics() {
        let r = base();
        assert!((r.delivered_fraction() - 0.6).abs() < 1e-12);
        assert!((r.link_utilization() - 0.65).abs() < 1e-12);
        assert!((r.delivered_over_psi() - 60.0 / 65.0).abs() < 1e-12);
        assert!(r.conserves_packets());
    }

    #[test]
    fn zero_denominators_are_safe() {
        let r = SimReport {
            total_packets: 0,
            delivered: 0,
            stranded: 0,
            never_moved: 0,
            hops_traversed: 0,
            psi: 0.0,
            link_slots_offered: 0,
            slots_used: 0,
            delivered_per_flow: HashMap::new(),
            completion_slot: HashMap::new(),
        };
        assert_eq!(r.delivered_fraction(), 0.0);
        assert_eq!(r.link_utilization(), 0.0);
        assert_eq!(r.delivered_over_psi(), 0.0);
    }
}
