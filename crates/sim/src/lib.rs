//! # octopus-sim
//!
//! Slot-level packet simulator for circuit-switched fabrics — the
//! measurement backbone of every experiment in the Octopus reproduction.
//!
//! The model follows §8 of the paper: time is divided into slots; during a
//! configuration `(M, α)`, each active link of `M` transmits **one packet per
//! slot**, chosen from the head of the transmitting node's virtual output
//! queue (VOQ) for that link; reconfigurations silence the whole fabric for
//! `Δ` slots. Packets are prioritized *first by weight, then by flow ID* —
//! the paper's fixed rule that makes packet routing through a given schedule
//! fully deterministic.
//!
//! A packet that reaches an intermediate node can depart on a later slot of
//! the **same** configuration once it has crossed the node's switching fabric
//! (§5 "Traversing Multiple Hops in a Configuration"); the switch latency is
//! configurable, and [`ForwardingMode::NextConfigOnly`] restores the
//! one-hop-per-configuration abstraction of §4 when desired.
//!
//! The simulator consumes *resolved* flows — each a `(flow, size, route)`
//! triple with one concrete route. Single-route loads convert directly
//! ([`resolve`]); Octopus+ resolves its own route choices before evaluation.
//!
//! ## Example
//!
//! ```
//! use octopus_net::{topology, Matching, Configuration, Schedule};
//! use octopus_traffic::{Flow, FlowId, Route, TrafficLoad};
//! use octopus_sim::{resolve, SimConfig, Simulator};
//!
//! let net = topology::complete(3);
//! let load = TrafficLoad::new(vec![Flow::single(
//!     FlowId(1), 40, Route::from_ids([0, 1]).unwrap(),
//! )]).unwrap();
//! let schedule = Schedule::from(vec![Configuration::new(
//!     Matching::new(&net, [(0u32, 1u32)]).unwrap(), 40,
//! )]);
//!
//! let mut sim = Simulator::new(Some(&net), resolve(&load).unwrap(), SimConfig::default()).unwrap();
//! let report = sim.run(&schedule).unwrap();
//! assert_eq!(report.delivered, 40);
//! assert_eq!(report.delivered_fraction(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod report;

pub use engine::{
    resolve, ForwardingMode, ReconfigModel, ResolvedFlow, SimConfig, SimError, Simulator,
};
pub use report::SimReport;
