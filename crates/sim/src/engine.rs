use crate::SimReport;
use octopus_net::{Network, NodeId, Schedule};
use octopus_traffic::{FlowId, HopWeighting, Route, TrafficLoad, Weight};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// When a packet that arrived at an intermediate node becomes eligible for
/// its next hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForwardingMode {
    /// The packet can continue within the **same** configuration after
    /// `switch_latency` slots (§5; switch latency is "at most 1–2 time
    /// slots"). Latencies below 1 are clamped to 1: a packet cannot traverse
    /// two hops in a single slot.
    WithinConfig {
        /// Slots needed to cross an intermediate node's switching fabric.
        switch_latency: u64,
    },
    /// The §4 abstraction: a packet traverses at most one hop per
    /// configuration; forwarding resumes at the next configuration.
    NextConfigOnly,
}

impl Default for ForwardingMode {
    fn default() -> Self {
        ForwardingMode::WithinConfig { switch_latency: 1 }
    }
}

/// What happens during the Δ reconfiguration slots between configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ReconfigModel {
    /// The paper's base model: the whole fabric is silent for Δ slots
    /// ("the circuit network must be reconfigured completely").
    #[default]
    Global,
    /// FSO-style **localized** reconfiguration (the paper's future-work
    /// direction, footnote 1 / §9): links present in both the outgoing and
    /// the incoming matching keep carrying traffic while the changed links
    /// retrain for Δ slots.
    Localized,
}

/// Simulator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Reconfiguration delay Δ in slots.
    pub delta: u64,
    /// Global (full-fabric silence) or localized reconfiguration.
    pub reconfig: ReconfigModel,
    /// Forwarding semantics at intermediate nodes.
    pub forwarding: ForwardingMode,
    /// Priority weighting (the paper's `1/k` by default; Octopus-e boosts
    /// later hops).
    pub weighting: HopWeighting,
    /// If set, running a schedule whose total cost exceeds this window is an
    /// error (schedulers are expected to truncate themselves).
    pub window: Option<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            delta: 20,
            reconfig: ReconfigModel::default(),
            forwarding: ForwardingMode::default(),
            weighting: HopWeighting::Uniform,
            window: None,
        }
    }
}

/// A flow resolved to one concrete route — the simulator's input unit.
///
/// Several resolved flows may share a [`FlowId`] (Octopus+ splits a flow's
/// packets across route choices); the ID is what packet prioritization uses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolvedFlow {
    /// Flow identity (priority tie-breaker).
    pub flow: FlowId,
    /// Number of packets.
    pub size: u64,
    /// The one route these packets follow.
    pub route: Route,
}

/// Converts a single-route [`TrafficLoad`] into resolved flows.
///
/// # Errors
/// Fails with [`SimError::MultiRouteFlow`] if any flow still has several
/// candidate routes — resolve those with a scheduler (Octopus+) or pick one.
pub fn resolve(load: &TrafficLoad) -> Result<Vec<ResolvedFlow>, SimError> {
    load.flows()
        .iter()
        .map(|f| {
            if f.routes.len() != 1 {
                return Err(SimError::MultiRouteFlow(f.id));
            }
            Ok(ResolvedFlow {
                flow: f.id,
                size: f.size,
                route: f.routes[0].clone(),
            })
        })
        .collect()
}

/// Simulation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A flow has several candidate routes; the simulator needs exactly one.
    MultiRouteFlow(FlowId),
    /// A resolved route uses a link absent from the provided network.
    RouteNotInNetwork(FlowId),
    /// A schedule matching uses a link absent from the provided network.
    ScheduleNotInNetwork,
    /// The schedule exceeds the configured window.
    WindowExceeded {
        /// Total schedule cost `Σ(α+Δ)`.
        cost: u64,
        /// The configured window.
        window: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MultiRouteFlow(id) => {
                write!(f, "flow {id} has multiple routes; resolve it first")
            }
            SimError::RouteNotInNetwork(id) => {
                write!(f, "route of flow {id} uses a link absent from the fabric")
            }
            SimError::ScheduleNotInNetwork => {
                write!(f, "schedule activates a link absent from the fabric")
            }
            SimError::WindowExceeded { cost, window } => {
                write!(f, "schedule cost {cost} exceeds window {window}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The slot-level simulator. Construct once, [`Simulator::run`] any number of
/// schedules against the same load (each run starts from fresh queues).
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: SimConfig,
    flows: Vec<ResolvedFlow>,
    failed_links: std::collections::HashSet<(NodeId, NodeId)>,
}

impl Simulator {
    /// Builds a simulator for the given resolved load.
    ///
    /// When `net` is provided, every route is validated against it.
    pub fn new(
        net: Option<&Network>,
        flows: Vec<ResolvedFlow>,
        cfg: SimConfig,
    ) -> Result<Self, SimError> {
        if let Some(net) = net {
            for f in &flows {
                if net.validate_route(f.route.nodes()).is_err() {
                    return Err(SimError::RouteNotInNetwork(f.flow));
                }
            }
        }
        Ok(Simulator {
            cfg,
            flows,
            failed_links: std::collections::HashSet::new(),
        })
    }

    /// Fault injection: marks circuit links as failed. A failed link can
    /// still be scheduled (the controller does not know), and its slots
    /// still count as offered — it just carries nothing, exactly like a
    /// mis-aligned FSO terminal or a dead cross-connect.
    pub fn with_failed_links<I, E>(mut self, links: I) -> Self
    where
        I: IntoIterator<Item = E>,
        E: Into<(u32, u32)>,
    {
        self.failed_links = links
            .into_iter()
            .map(|e| {
                let (i, j) = e.into();
                (NodeId(i), NodeId(j))
            })
            .collect();
        self
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The resolved load.
    pub fn flows(&self) -> &[ResolvedFlow] {
        &self.flows
    }

    /// Runs `schedule` against the load and reports the outcome.
    pub fn run(&self, schedule: &Schedule) -> Result<SimReport, SimError> {
        if let Some(window) = self.cfg.window {
            let cost = schedule.total_cost(self.cfg.delta);
            if cost > window {
                return Err(SimError::WindowExceeded { cost, window });
            }
        }
        let mut engine = Engine::new(&self.cfg, &self.flows);
        engine.run(schedule, &self.failed_links);
        Ok(engine.into_report(&self.flows))
    }
}

/// VOQ priority key: higher weight first, then lower flow ID, then resolved
/// index (a deterministic final tie-break).
type PrioKey = (Reverse<Weight>, FlowId, u32);

/// Per-node VOQ table: next-hop node → priority queue of (flow index,
/// route position).
type VoqTable = HashMap<u32, BTreeMap<PrioKey, (u32, u32)>>;

struct Engine<'a> {
    cfg: &'a SimConfig,
    flows: &'a [ResolvedFlow],
    hops: Vec<u32>,
    /// `pos_counts[f][p]`: packets of resolved flow `f` available at route
    /// node `p` (p == hops(f) means delivered).
    pos_counts: Vec<Vec<u64>>,
    /// Per node: next-hop → priority queue of (flow index, position).
    voqs: Vec<VoqTable>,
    /// In-flight packets keyed by the slot they become available.
    arrivals: BTreeMap<u64, Vec<(u32, u32, u64)>>,
    weighting: HopWeighting,
    psi: f64,
    hops_traversed: u64,
    link_slots: u64,
    now: u64,
    /// Slot of the most recent delivery, per resolved flow.
    last_delivery: Vec<u64>,
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a SimConfig, flows: &'a [ResolvedFlow]) -> Self {
        let n_nodes = flows
            .iter()
            .flat_map(|f| f.route.nodes())
            .map(|v| v.0 + 1)
            .max()
            .unwrap_or(1) as usize;
        let hops: Vec<u32> = flows.iter().map(|f| f.route.hops()).collect();
        let mut pos_counts: Vec<Vec<u64>> = flows
            .iter()
            .map(|f| vec![0u64; f.route.nodes().len()])
            .collect();
        let mut voqs: Vec<VoqTable> = vec![HashMap::new(); n_nodes];
        let weighting = cfg.weighting;
        for (fi, f) in flows.iter().enumerate() {
            if f.size == 0 {
                continue;
            }
            pos_counts[fi][0] = f.size;
            let (at, next) = f.route.hop(0);
            let key = (
                Reverse(weighting.hop_weight(hops[fi], 0)),
                f.flow,
                fi as u32,
            );
            voqs[at.index()]
                .entry(next.0)
                .or_default()
                .insert(key, (fi as u32, 0));
        }
        let last_delivery = vec![0u64; flows.len()];
        Engine {
            cfg,
            flows,
            hops,
            pos_counts,
            voqs,
            arrivals: BTreeMap::new(),
            weighting,
            psi: 0.0,
            hops_traversed: 0,
            link_slots: 0,
            now: 0,
            last_delivery,
        }
    }

    fn switch_latency(&self) -> u64 {
        match self.cfg.forwarding {
            ForwardingMode::WithinConfig { switch_latency } => switch_latency.max(1),
            ForwardingMode::NextConfigOnly => 1, // availability deferred to config end anyway
        }
    }

    fn run(&mut self, schedule: &Schedule, failed: &std::collections::HashSet<(NodeId, NodeId)>) {
        let mut prev_links: std::collections::HashSet<(NodeId, NodeId)> =
            std::collections::HashSet::new();
        for config in schedule.configs() {
            if self.cfg.delta > 0 {
                match self.cfg.reconfig {
                    ReconfigModel::Global => self.now += self.cfg.delta,
                    ReconfigModel::Localized => {
                        // Persistent links keep serving during the Δ
                        // transition slots; changed links retrain.
                        let persistent: Vec<(NodeId, NodeId)> = config
                            .matching
                            .links()
                            .iter()
                            .copied()
                            .filter(|l| prev_links.contains(l) && !failed.contains(l))
                            .collect();
                        let persist_count = config
                            .matching
                            .links()
                            .iter()
                            .filter(|l| prev_links.contains(l))
                            .count() as u64;
                        self.link_slots += self.cfg.delta * persist_count;
                        let defer = matches!(self.cfg.forwarding, ForwardingMode::NextConfigOnly);
                        for s in 0..self.cfg.delta {
                            let t = self.now + s;
                            if !defer {
                                self.admit_arrivals_until(t);
                            }
                            for &(i, j) in &persistent {
                                self.transmit_one(
                                    i,
                                    j,
                                    t,
                                    defer,
                                    self.now + self.cfg.delta + config.alpha,
                                );
                            }
                        }
                        self.now += self.cfg.delta;
                    }
                }
            }
            prev_links = config.matching.links().iter().copied().collect();
            let start = self.now;
            let alpha = config.alpha;
            // Failed links still occupy their ports and count as offered
            // slots, but never carry a packet.
            let links: Vec<(NodeId, NodeId)> = config
                .matching
                .links()
                .iter()
                .copied()
                .filter(|l| !failed.contains(l))
                .collect();
            self.link_slots += alpha * config.matching.len() as u64;

            let defer_to_config_end = matches!(self.cfg.forwarding, ForwardingMode::NextConfigOnly);

            if !defer_to_config_end && self.can_batch(&links, start) {
                self.admit_arrivals_until(start);
                self.batch_serve(&links, alpha, start);
            } else {
                for s in 0..alpha {
                    let t = start + s;
                    if !defer_to_config_end {
                        self.admit_arrivals_until(t);
                    }
                    for &(i, j) in &links {
                        self.transmit_one(i, j, t, defer_to_config_end, start + alpha);
                    }
                }
            }
            self.now = start + alpha;
            if defer_to_config_end {
                // Everything in flight lands now, available from the next
                // configuration onwards.
                self.admit_arrivals_until(u64::MAX);
            }
        }
        // Drain any remaining in-flight packets so final accounting sees them
        // as stranded at their arrival node.
        self.admit_arrivals_until(u64::MAX);
    }

    /// Batch fast path is sound when the matching has no "chains" (no node
    /// both receives and transmits in this configuration) and no in-flight
    /// packet lands after the configuration starts: then no VOQ served this
    /// configuration gains packets mid-flight, and each link independently
    /// serves `min(α, queued)` packets in priority order.
    fn can_batch(&self, links: &[(NodeId, NodeId)], start: u64) -> bool {
        if let Some((&due, _)) = self.arrivals.iter().next_back() {
            if due > start {
                return false;
            }
        }
        let sources: std::collections::HashSet<NodeId> = links.iter().map(|&(i, _)| i).collect();
        !links.iter().any(|&(_, j)| sources.contains(&j))
    }

    fn batch_serve(&mut self, links: &[(NodeId, NodeId)], alpha: u64, start: u64) {
        let latency = self.switch_latency();
        for &(i, j) in links {
            let mut budget = alpha;
            while budget > 0 {
                let Some((&key, &(fi, pos))) = self
                    .voqs
                    .get(i.index())
                    .and_then(|m| m.get(&j.0))
                    .and_then(|q| q.iter().next())
                else {
                    break;
                };
                let avail = self.pos_counts[fi as usize][pos as usize];
                let take = avail.min(budget);
                budget -= take;
                self.pos_counts[fi as usize][pos as usize] -= take;
                if self.pos_counts[fi as usize][pos as usize] == 0 {
                    match self.voqs[i.index()].get_mut(&j.0) {
                        Some(q) => {
                            q.remove(&key);
                        }
                        None => debug_assert!(false, "drained VOQ exists"),
                    }
                }
                self.account_traversal(fi, pos, take);
                let new_pos = pos + 1;
                if new_pos == self.hops[fi as usize] {
                    self.pos_counts[fi as usize][new_pos as usize] += take; // delivered
                                                                            // The batch's packets leave one per slot; the last one
                                                                            // departs after (alpha - budget - 1) earlier services.
                    let last_slot = start + (alpha - budget) - 1;
                    let ld = &mut self.last_delivery[fi as usize];
                    *ld = (*ld).max(last_slot);
                } else {
                    // Conservative-but-exact due time under the no-chain
                    // precondition: the receiving node transmits nothing this
                    // configuration, so availability only matters from the
                    // end of the configuration onwards.
                    let due = (start + alpha - 1).saturating_add(latency);
                    self.arrivals
                        .entry(due)
                        .or_default()
                        .push((fi, new_pos, take));
                }
            }
        }
    }

    fn transmit_one(
        &mut self,
        i: NodeId,
        j: NodeId,
        t: u64,
        defer_to_config_end: bool,
        config_end: u64,
    ) {
        let Some((&key, &(fi, pos))) = self
            .voqs
            .get(i.index())
            .and_then(|m| m.get(&j.0))
            .and_then(|q| q.iter().next())
        else {
            return;
        };
        self.pos_counts[fi as usize][pos as usize] -= 1;
        if self.pos_counts[fi as usize][pos as usize] == 0 {
            match self.voqs[i.index()].get_mut(&j.0) {
                Some(q) => {
                    q.remove(&key);
                }
                None => debug_assert!(false, "drained VOQ exists"),
            }
        }
        self.account_traversal(fi, pos, 1);
        let new_pos = pos + 1;
        if new_pos == self.hops[fi as usize] {
            self.pos_counts[fi as usize][new_pos as usize] += 1; // delivered
            let ld = &mut self.last_delivery[fi as usize];
            *ld = (*ld).max(t);
        } else {
            let due = if defer_to_config_end {
                config_end
            } else {
                t + self.switch_latency()
            };
            self.arrivals.entry(due).or_default().push((fi, new_pos, 1));
        }
    }

    fn account_traversal(&mut self, fi: u32, pos: u32, count: u64) {
        self.hops_traversed += count;
        let w = self
            .weighting
            .hop_weight(self.hops[fi as usize], pos)
            .value();
        self.psi += w * count as f64;
    }

    /// Moves all arrivals due at or before `t` into their VOQs.
    fn admit_arrivals_until(&mut self, t: u64) {
        loop {
            let Some((&due, _)) = self.arrivals.iter().next() else {
                return;
            };
            if due > t {
                return;
            }
            let Some(batch) = self.arrivals.remove(&due) else {
                debug_assert!(false, "key was just observed in the map");
                return;
            };
            for (fi, pos, count) in batch {
                self.admit(fi, pos, count);
            }
        }
    }

    fn admit(&mut self, fi: u32, pos: u32, count: u64) {
        // `pos < hops` guaranteed: delivered packets never enter `arrivals`.
        self.pos_counts[fi as usize][pos as usize] += count;
        let f = &self.flows[fi as usize];
        let (at, next) = f.route.hop(pos);
        let key = (
            Reverse(self.weighting.hop_weight(self.hops[fi as usize], pos)),
            f.flow,
            fi,
        );
        self.voqs[at.index()]
            .entry(next.0)
            .or_default()
            .insert(key, (fi, pos));
    }

    fn into_report(self, flows: &[ResolvedFlow]) -> SimReport {
        let mut delivered = 0u64;
        let mut stranded = 0u64;
        let mut never_moved = 0u64;
        let mut per_flow: HashMap<FlowId, u64> = HashMap::new();
        let mut per_flow_size: HashMap<FlowId, u64> = HashMap::new();
        let mut per_flow_last: HashMap<FlowId, u64> = HashMap::new();
        for (fi, f) in flows.iter().enumerate() {
            let counts = &self.pos_counts[fi];
            let h = self.hops[fi] as usize;
            let d = counts[h];
            delivered += d;
            if d > 0 {
                *per_flow.entry(f.flow).or_insert(0) += d;
            }
            *per_flow_size.entry(f.flow).or_insert(0) += f.size;
            let last = per_flow_last.entry(f.flow).or_insert(0);
            *last = (*last).max(self.last_delivery[fi]);
            never_moved += counts[0];
            stranded += counts[1..h].iter().sum::<u64>();
        }
        let completion_slot: HashMap<FlowId, u64> = per_flow_size
            .iter()
            .filter(|&(id, &size)| size > 0 && per_flow.get(id).copied().unwrap_or(0) == size)
            .map(|(&id, _)| (id, per_flow_last[&id] + 1))
            .collect();
        SimReport {
            total_packets: flows.iter().map(|f| f.size).sum(),
            delivered,
            stranded,
            never_moved,
            hops_traversed: self.hops_traversed,
            psi: self.psi,
            link_slots_offered: self.link_slots,
            slots_used: self.now,
            delivered_per_flow: per_flow,
            completion_slot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_net::{topology, Configuration, Matching};
    use octopus_traffic::Flow;

    fn sched(parts: &[(u64, &[(u32, u32)])]) -> Schedule {
        Schedule::from(
            parts
                .iter()
                .map(|&(alpha, links)| {
                    Configuration::new(Matching::new_free(links.iter().copied()).unwrap(), alpha)
                })
                .collect::<Vec<_>>(),
        )
    }

    fn cfg0() -> SimConfig {
        SimConfig {
            delta: 0,
            ..SimConfig::default()
        }
    }

    fn single(id: u64, size: u64, route: &[u32]) -> ResolvedFlow {
        ResolvedFlow {
            flow: FlowId(id),
            size,
            route: Route::from_ids(route.iter().copied()).unwrap(),
        }
    }

    /// The paper's Example 1 (Figure 1): nodes a=0, b=1, c=2, d=3.
    /// Flows: f1 = (a,c) via (a,b,c), 100 pkts; f2 = (d,b) via (d,a,b),
    /// 50 pkts; f3 = (c,a) via (c,b,a), 50 pkts. Δ = 0, W = 300.
    fn example1_flows() -> Vec<ResolvedFlow> {
        vec![
            single(1, 100, &[0, 1, 2]),
            single(2, 50, &[3, 0, 1]),
            single(3, 50, &[2, 1, 0]),
        ]
    }

    #[test]
    fn paper_example1_given_schedule() {
        // M1=(d,a) 50; M2=(a,b) 100; M3=(c,b) 50; M4=(b,a) 50; M5=(a,b) 50.
        let schedule = sched(&[
            (50, &[(3, 0)]),
            (100, &[(0, 1)]),
            (50, &[(2, 1)]),
            (50, &[(1, 0)]),
            (50, &[(0, 1)]),
        ]);
        let sim = Simulator::new(None, example1_flows(), cfg0()).unwrap();
        let r = sim.run(&schedule).unwrap();
        // The (a,c)-flow wins the second configuration on flow-ID priority,
        // so its 100 packets strand at b; f2 and f3 fully deliver.
        assert_eq!(r.delivered, 100, "paper: total delivered is 100");
        assert!(
            (r.psi - 150.0).abs() < 1e-9,
            "paper: psi is 150, got {}",
            r.psi
        );
        assert_eq!(r.stranded, 100);
        assert!(r.conserves_packets());
        assert_eq!(r.delivered_per_flow[&FlowId(2)], 50);
        assert_eq!(r.delivered_per_flow[&FlowId(3)], 50);
        assert_eq!(r.slots_used, 300);
    }

    #[test]
    fn paper_example1_optimal_schedule() {
        // (M1∪M3, 50), (M4∪M5, 50), (M2, 100), ((b,c), 100).
        let schedule = sched(&[
            (50, &[(3, 0), (2, 1)]),
            (50, &[(1, 0), (0, 1)]),
            (100, &[(0, 1)]),
            (100, &[(1, 2)]),
        ]);
        let sim = Simulator::new(None, example1_flows(), cfg0()).unwrap();
        let r = sim.run(&schedule).unwrap();
        assert_eq!(r.delivered, 200, "paper: optimal delivers all packets");
        assert!((r.psi - 200.0).abs() < 1e-9, "paper: optimal psi is 200");
        assert_eq!(r.stranded + r.never_moved, 0);
    }

    #[test]
    fn reconfiguration_delay_consumes_slots_without_traffic() {
        let flows = vec![single(1, 10, &[0, 1])];
        let schedule = sched(&[(10, &[(0, 1)])]);
        let cfg = SimConfig {
            delta: 20,
            ..SimConfig::default()
        };
        let sim = Simulator::new(None, flows, cfg).unwrap();
        let r = sim.run(&schedule).unwrap();
        assert_eq!(r.delivered, 10);
        assert_eq!(r.slots_used, 30);
        assert_eq!(r.link_slots_offered, 10);
    }

    #[test]
    fn priority_weight_beats_flow_id() {
        // Two flows contend for (0,1): a 2-hop flow (weight 1/2, lower id)
        // vs a 1-hop flow (weight 1, higher id). Weight wins.
        let flows = vec![single(1, 5, &[0, 1, 2]), single(2, 5, &[0, 1])];
        let schedule = sched(&[(5, &[(0, 1)])]);
        let sim = Simulator::new(None, flows, cfg0()).unwrap();
        let r = sim.run(&schedule).unwrap();
        assert_eq!(r.delivered, 5);
        assert_eq!(r.delivered_per_flow.get(&FlowId(2)), Some(&5));
        assert_eq!(r.delivered_per_flow.get(&FlowId(1)), None);
    }

    #[test]
    fn flow_id_breaks_weight_ties() {
        let flows = vec![single(7, 5, &[0, 1]), single(3, 5, &[0, 1])];
        let schedule = sched(&[(5, &[(0, 1)])]);
        let sim = Simulator::new(None, flows, cfg0()).unwrap();
        let r = sim.run(&schedule).unwrap();
        assert_eq!(r.delivered_per_flow.get(&FlowId(3)), Some(&5));
        assert_eq!(r.delivered_per_flow.get(&FlowId(7)), None);
    }

    #[test]
    fn multihop_within_configuration() {
        // One configuration activates both hops: packets chain through with
        // switch latency 1.
        let flows = vec![single(1, 10, &[0, 1, 2])];
        let schedule = sched(&[(11, &[(0, 1), (1, 2)])]);
        let sim = Simulator::new(None, flows, cfg0()).unwrap();
        let r = sim.run(&schedule).unwrap();
        // Slot t moves a packet 0->1 (available at t+1); slots 1..=10 move
        // them 1->2: all 10 delivered within 11 slots.
        assert_eq!(r.delivered, 10);
        assert_eq!(r.hops_traversed, 20);
    }

    #[test]
    fn next_config_only_blocks_chaining() {
        let flows = vec![single(1, 10, &[0, 1, 2])];
        let schedule = sched(&[(11, &[(0, 1), (1, 2)])]);
        let cfg = SimConfig {
            delta: 0,
            forwarding: ForwardingMode::NextConfigOnly,
            ..SimConfig::default()
        };
        let sim = Simulator::new(None, flows.clone(), cfg).unwrap();
        let r = sim.run(&schedule).unwrap();
        assert_eq!(r.delivered, 0);
        assert_eq!(r.stranded, 10);
        // A second configuration lets them finish.
        let schedule2 = sched(&[(11, &[(0, 1), (1, 2)]), (10, &[(1, 2)])]);
        let r2 = sim.run(&schedule2).unwrap();
        assert_eq!(r2.delivered, 10);
    }

    #[test]
    fn switch_latency_delays_chained_hops() {
        let flows = vec![single(1, 1, &[0, 1, 2])];
        // With latency 3, the packet moves 0->1 at slot 0, is available at
        // slot 3, so an alpha of 3 cannot finish it but 4 can.
        let mk_cfg = |lat| SimConfig {
            delta: 0,
            forwarding: ForwardingMode::WithinConfig {
                switch_latency: lat,
            },
            ..SimConfig::default()
        };
        let schedule = sched(&[(3, &[(0, 1), (1, 2)])]);
        let sim = Simulator::new(None, flows.clone(), mk_cfg(3)).unwrap();
        assert_eq!(sim.run(&schedule).unwrap().delivered, 0);
        let schedule4 = sched(&[(4, &[(0, 1), (1, 2)])]);
        let sim = Simulator::new(None, flows, mk_cfg(3)).unwrap();
        assert_eq!(sim.run(&schedule4).unwrap().delivered, 1);
    }

    #[test]
    fn batch_path_matches_slot_path() {
        // No chains: batchable. Compare against NextConfigOnly-free slot sim
        // by forcing chains off and verifying totals directly.
        let flows = vec![
            single(1, 30, &[0, 1]),
            single(2, 50, &[2, 3]),
            single(3, 10, &[4, 5, 6]),
        ];
        let schedule = sched(&[(40, &[(0, 1), (2, 3), (4, 5)]), (15, &[(5, 6)])]);
        let sim = Simulator::new(None, flows, cfg0()).unwrap();
        let r = sim.run(&schedule).unwrap();
        assert_eq!(r.delivered, 30 + 40 + 10);
        assert_eq!(r.hops_traversed, 30 + 40 + 10 + 10);
        assert!(r.conserves_packets());
    }

    #[test]
    fn utilization_accounts_idle_links() {
        let flows = vec![single(1, 10, &[0, 1])];
        // Second link (2,3) carries nothing.
        let schedule = sched(&[(10, &[(0, 1), (2, 3)])]);
        let sim = Simulator::new(None, flows, cfg0()).unwrap();
        let r = sim.run(&schedule).unwrap();
        assert_eq!(r.link_slots_offered, 20);
        assert!((r.link_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_enforcement() {
        let flows = vec![single(1, 10, &[0, 1])];
        let schedule = sched(&[(10, &[(0, 1)])]);
        let cfg = SimConfig {
            delta: 5,
            window: Some(12),
            ..SimConfig::default()
        };
        let sim = Simulator::new(None, flows, cfg).unwrap();
        assert_eq!(
            sim.run(&schedule),
            Err(SimError::WindowExceeded {
                cost: 15,
                window: 12
            })
        );
    }

    #[test]
    fn resolve_rejects_multi_route() {
        let load = TrafficLoad::new(vec![Flow::new(
            FlowId(1),
            5,
            vec![
                Route::from_ids([0, 1]).unwrap(),
                Route::from_ids([0, 2, 1]).unwrap(),
            ],
        )
        .unwrap()])
        .unwrap();
        assert_eq!(resolve(&load), Err(SimError::MultiRouteFlow(FlowId(1))));
    }

    #[test]
    fn route_validation_against_network() {
        let net = topology::ring(4).unwrap();
        let bad = vec![single(1, 1, &[0, 2])];
        assert_eq!(
            Simulator::new(Some(&net), bad, cfg0()).err(),
            Some(SimError::RouteNotInNetwork(FlowId(1)))
        );
    }

    #[test]
    fn empty_schedule_delivers_nothing() {
        let flows = vec![single(1, 10, &[0, 1])];
        let sim = Simulator::new(None, flows, cfg0()).unwrap();
        let r = sim.run(&Schedule::new()).unwrap();
        assert_eq!(r.delivered, 0);
        assert_eq!(r.never_moved, 10);
        assert!(r.conserves_packets());
    }

    #[test]
    fn zero_size_flows_ignored() {
        let flows = vec![single(1, 0, &[0, 1]), single(2, 5, &[0, 1])];
        let schedule = sched(&[(10, &[(0, 1)])]);
        let sim = Simulator::new(None, flows, cfg0()).unwrap();
        let r = sim.run(&schedule).unwrap();
        assert_eq!(r.delivered, 5);
        assert_eq!(r.total_packets, 5);
    }

    #[test]
    fn rerunning_simulator_is_stateless() {
        let flows = vec![single(1, 10, &[0, 1])];
        let schedule = sched(&[(4, &[(0, 1)])]);
        let sim = Simulator::new(None, flows, cfg0()).unwrap();
        let a = sim.run(&schedule).unwrap();
        let b = sim.run(&schedule).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.delivered, 4);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use octopus_net::{Configuration, Matching};

    fn sched(parts: &[(u64, &[(u32, u32)])]) -> Schedule {
        Schedule::from(
            parts
                .iter()
                .map(|&(alpha, links)| {
                    Configuration::new(Matching::new_free(links.iter().copied()).unwrap(), alpha)
                })
                .collect::<Vec<_>>(),
        )
    }

    fn flow(id: u64, size: u64, route: &[u32]) -> ResolvedFlow {
        ResolvedFlow {
            flow: FlowId(id),
            size,
            route: Route::from_ids(route.iter().copied()).unwrap(),
        }
    }

    fn cfg0() -> SimConfig {
        SimConfig {
            delta: 0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn failed_link_carries_nothing_but_counts_as_offered() {
        let flows = vec![flow(1, 10, &[0, 1]), flow(2, 10, &[2, 3])];
        let schedule = sched(&[(10, &[(0, 1), (2, 3)])]);
        let sim = Simulator::new(None, flows, cfg0())
            .unwrap()
            .with_failed_links([(0u32, 1u32)]);
        let r = sim.run(&schedule).unwrap();
        assert_eq!(r.delivered, 10, "only the healthy link delivers");
        assert_eq!(r.delivered_per_flow.get(&FlowId(1)), None);
        assert_eq!(r.link_slots_offered, 20, "failed slots still offered");
        assert!((r.link_utilization() - 0.5).abs() < 1e-12);
        assert!(r.conserves_packets());
    }

    #[test]
    fn failure_mid_route_strands_packets() {
        let flows = vec![flow(1, 5, &[0, 1, 2])];
        let schedule = sched(&[(5, &[(0, 1)]), (5, &[(1, 2)])]);
        let sim = Simulator::new(None, flows, cfg0())
            .unwrap()
            .with_failed_links([(1u32, 2u32)]);
        let r = sim.run(&schedule).unwrap();
        assert_eq!(r.delivered, 0);
        assert_eq!(r.stranded, 5, "packets stuck at the intermediate node");
    }

    #[test]
    fn no_failures_is_a_noop() {
        let flows = vec![flow(1, 10, &[0, 1])];
        let schedule = sched(&[(10, &[(0, 1)])]);
        let base = Simulator::new(None, flows.clone(), cfg0()).unwrap();
        let faulty = Simulator::new(None, flows, cfg0())
            .unwrap()
            .with_failed_links(Vec::<(u32, u32)>::new());
        assert_eq!(base.run(&schedule), faulty.run(&schedule));
    }

    #[test]
    fn rescheduling_around_known_failures_recovers() {
        // A second schedule avoiding the dead link gets packets through.
        let flows = vec![flow(1, 5, &[0, 1, 2])];
        let sim = Simulator::new(None, flows, cfg0())
            .unwrap()
            .with_failed_links([(0u32, 1u32)]);
        // This one is doomed...
        let bad = sched(&[(5, &[(0, 1)]), (5, &[(1, 2)])]);
        assert_eq!(sim.run(&bad).unwrap().delivered, 0);
        // ...but the route itself is the problem; a healthy route works.
        let flows2 = vec![flow(1, 5, &[0, 3])];
        let sim2 = Simulator::new(None, flows2, cfg0())
            .unwrap()
            .with_failed_links([(0u32, 1u32)]);
        let good = sched(&[(5, &[(0, 3)])]);
        assert_eq!(sim2.run(&good).unwrap().delivered, 5);
    }
}

#[cfg(test)]
mod localized_tests {
    use super::*;
    use octopus_net::{Configuration, Matching};

    fn sched(parts: &[(u64, &[(u32, u32)])]) -> Schedule {
        Schedule::from(
            parts
                .iter()
                .map(|&(alpha, links)| {
                    Configuration::new(Matching::new_free(links.iter().copied()).unwrap(), alpha)
                })
                .collect::<Vec<_>>(),
        )
    }

    fn flow(id: u64, size: u64, route: &[u32]) -> ResolvedFlow {
        ResolvedFlow {
            flow: FlowId(id),
            size,
            route: Route::from_ids(route.iter().copied()).unwrap(),
        }
    }

    fn cfg(reconfig: ReconfigModel, delta: u64) -> SimConfig {
        SimConfig {
            delta,
            reconfig,
            ..SimConfig::default()
        }
    }

    #[test]
    fn persistent_link_serves_through_reconfiguration() {
        // Link (0,1) persists across both configurations; under localized
        // reconfiguration it also carries packets during the Δ gap.
        let flows = vec![flow(1, 100, &[0, 1])];
        let schedule = sched(&[(10, &[(0, 1)]), (10, &[(0, 1), (2, 3)])]);
        let global = Simulator::new(None, flows.clone(), cfg(ReconfigModel::Global, 15)).unwrap();
        let local = Simulator::new(None, flows, cfg(ReconfigModel::Localized, 15)).unwrap();
        let rg = global.run(&schedule).unwrap();
        let rl = local.run(&schedule).unwrap();
        assert_eq!(rg.delivered, 20, "two alphas of 10");
        // Localized: the second transition's 15 slots also serve (0,1). The
        // first transition has no previous configuration, so nothing persists.
        assert_eq!(rl.delivered, 35);
        assert!(rl.slots_used == rg.slots_used, "same wall clock");
    }

    #[test]
    fn changed_links_stay_silent_during_transition() {
        // (2,3) is new in the second configuration: it must not serve during
        // the transition even under localized reconfiguration.
        let flows = vec![flow(1, 100, &[2, 3])];
        let schedule = sched(&[(10, &[(0, 1)]), (10, &[(0, 1), (2, 3)])]);
        let local = Simulator::new(None, flows, cfg(ReconfigModel::Localized, 15)).unwrap();
        let r = local.run(&schedule).unwrap();
        assert_eq!(r.delivered, 10, "only the alpha slots of configuration 2");
    }

    #[test]
    fn localized_equals_global_when_delta_zero() {
        let flows = vec![flow(1, 30, &[0, 1]), flow(2, 30, &[1, 2])];
        let schedule = sched(&[(10, &[(0, 1)]), (25, &[(1, 2)])]);
        let a = Simulator::new(None, flows.clone(), cfg(ReconfigModel::Global, 0)).unwrap();
        let b = Simulator::new(None, flows, cfg(ReconfigModel::Localized, 0)).unwrap();
        assert_eq!(a.run(&schedule).unwrap(), b.run(&schedule).unwrap());
    }

    #[test]
    fn localized_counts_offered_transition_slots() {
        let flows = vec![flow(1, 100, &[0, 1])];
        let schedule = sched(&[(10, &[(0, 1)]), (10, &[(0, 1)])]);
        let local = Simulator::new(None, flows, cfg(ReconfigModel::Localized, 5)).unwrap();
        let r = local.run(&schedule).unwrap();
        // 10 + 10 alpha slots + 5 persistent transition slots offered.
        assert_eq!(r.link_slots_offered, 25);
        assert_eq!(r.delivered, 25);
        assert!((r.link_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn failed_links_do_not_serve_transitions() {
        let flows = vec![flow(1, 100, &[0, 1])];
        let schedule = sched(&[(10, &[(0, 1)]), (10, &[(0, 1)])]);
        let local = Simulator::new(None, flows, cfg(ReconfigModel::Localized, 5))
            .unwrap()
            .with_failed_links([(0u32, 1u32)]);
        let r = local.run(&schedule).unwrap();
        assert_eq!(r.delivered, 0);
    }
}

#[cfg(test)]
mod fct_tests {
    use super::*;
    use octopus_net::{Configuration, Matching};

    fn sched(parts: &[(u64, &[(u32, u32)])]) -> Schedule {
        Schedule::from(
            parts
                .iter()
                .map(|&(alpha, links)| {
                    Configuration::new(Matching::new_free(links.iter().copied()).unwrap(), alpha)
                })
                .collect::<Vec<_>>(),
        )
    }

    fn flow(id: u64, size: u64, route: &[u32]) -> ResolvedFlow {
        ResolvedFlow {
            flow: FlowId(id),
            size,
            route: Route::from_ids(route.iter().copied()).unwrap(),
        }
    }

    fn cfg(delta: u64) -> SimConfig {
        SimConfig {
            delta,
            ..SimConfig::default()
        }
    }

    #[test]
    fn completion_slot_counts_reconfiguration_time() {
        // Delta 10: slots 0..10 silent, flow's 5 packets leave at slots
        // 10..15 -> completion at slot 15 (one past the last service slot).
        let flows = vec![flow(1, 5, &[0, 1])];
        let schedule = sched(&[(5, &[(0, 1)])]);
        let sim = Simulator::new(None, flows, cfg(10)).unwrap();
        let r = sim.run(&schedule).unwrap();
        assert_eq!(r.completion_slot[&FlowId(1)], 15);
        assert_eq!(r.mean_fct(), Some(15.0));
    }

    #[test]
    fn incomplete_flows_have_no_completion_time() {
        let flows = vec![flow(1, 10, &[0, 1]), flow(2, 3, &[2, 3])];
        // Only 4 slots for flow 1 (partial), plenty for flow 2.
        let schedule = sched(&[(4, &[(0, 1)]), (3, &[(2, 3)])]);
        let sim = Simulator::new(None, flows, cfg(0)).unwrap();
        let r = sim.run(&schedule).unwrap();
        assert!(!r.completion_slot.contains_key(&FlowId(1)));
        assert!(r.completion_slot.contains_key(&FlowId(2)));
        assert_eq!(r.median_fct(), Some(7));
    }

    #[test]
    fn batch_and_slot_paths_agree_on_fct() {
        // Batchable schedule (no chains) vs the same run forced through the
        // slot path by a chained second configuration.
        let flows = vec![flow(1, 6, &[0, 1])];
        let batchable = sched(&[(10, &[(0, 1)])]);
        let sim = Simulator::new(None, flows.clone(), cfg(0)).unwrap();
        let r1 = sim.run(&batchable).unwrap();
        assert_eq!(r1.completion_slot[&FlowId(1)], 6);
        // Chained matching forces the per-slot path; same service pattern.
        let chained = sched(&[(10, &[(0, 1), (1, 0)])]);
        let flows2 = vec![flow(1, 6, &[0, 1]), flow(2, 1, &[1, 0])];
        let sim2 = Simulator::new(None, flows2, cfg(0)).unwrap();
        let r2 = sim2.run(&chained).unwrap();
        assert_eq!(r2.completion_slot[&FlowId(1)], 6);
    }

    #[test]
    fn multihop_fct_spans_configurations() {
        let flows = vec![flow(1, 4, &[0, 1, 2])];
        let schedule = sched(&[(4, &[(0, 1)]), (4, &[(1, 2)])]);
        let sim = Simulator::new(None, flows, cfg(5)).unwrap();
        let r = sim.run(&schedule).unwrap();
        // Timeline: 5 delta + 4 alpha + 5 delta + 4 alpha = 18.
        assert_eq!(r.completion_slot[&FlowId(1)], 18);
    }
}
