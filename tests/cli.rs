//! Integration tests driving the `octopus` CLI binary end to end.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_octopus"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("octopus-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn demo_schedule_simulate_round_trip() {
    let dir = tmp_dir("roundtrip");
    let d = dir.to_str().unwrap();

    let out = bin()
        .args([
            "demo", "--dir", d, "--n", "10", "--window", "600", "--seed", "3",
        ])
        .output()
        .expect("run demo");
    assert!(out.status.success(), "demo failed: {out:?}");
    assert!(dir.join("fabric.json").exists());
    assert!(dir.join("traffic.json").exists());

    let out = bin()
        .args([
            "schedule",
            "--fabric",
            &format!("{d}/fabric.json"),
            "--traffic",
            &format!("{d}/traffic.json"),
            "--window",
            "600",
            "--delta",
            "10",
            "--out",
            &format!("{d}/schedule.json"),
        ])
        .output()
        .expect("run schedule");
    assert!(out.status.success(), "schedule failed: {out:?}");

    let out = bin()
        .args([
            "simulate",
            "--fabric",
            &format!("{d}/fabric.json"),
            "--traffic",
            &format!("{d}/traffic.json"),
            "--schedule",
            &format!("{d}/schedule.json"),
            "--delta",
            "10",
        ])
        .output()
        .expect("run simulate");
    assert!(out.status.success(), "simulate failed: {out:?}");
    let report: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("simulate prints JSON report");
    assert!(report["delivered"].as_u64().unwrap() > 0);
    assert_eq!(
        report["delivered"].as_u64().unwrap()
            + report["stranded"].as_u64().unwrap()
            + report["never_moved"].as_u64().unwrap(),
        report["total_packets"].as_u64().unwrap(),
        "conservation holds through the CLI"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_scheduler_variants_run() {
    let dir = tmp_dir("variants");
    let d = dir.to_str().unwrap();
    assert!(bin()
        .args(["demo", "--dir", d, "--n", "8", "--window", "400", "--seed", "5"])
        .status()
        .unwrap()
        .success());
    for variant in ["octopus", "b", "g", "e", "plus", "local"] {
        let out = bin()
            .args([
                "schedule",
                "--fabric",
                &format!("{d}/fabric.json"),
                "--traffic",
                &format!("{d}/traffic.json"),
                "--window",
                "400",
                "--delta",
                "10",
                "--variant",
                variant,
            ])
            .output()
            .expect("run schedule");
        assert!(out.status.success(), "variant {variant} failed: {out:?}");
        let schedule: serde_json::Value =
            serde_json::from_slice(&out.stdout).expect("schedule JSON on stdout");
        assert!(schedule["configs"].as_array().is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn routes_consumes_csv_matrices() {
    let dir = tmp_dir("routes");
    let d = dir.to_str().unwrap();
    assert!(bin()
        .args(["demo", "--dir", d, "--n", "6", "--window", "100"])
        .status()
        .unwrap()
        .success());
    std::fs::write(
        dir.join("matrix.csv"),
        "src,dst,packets\n0,1,120\n2,5,44\n# comment\n4,0,9\n",
    )
    .unwrap();
    let out = bin()
        .args([
            "routes",
            "--fabric",
            &format!("{d}/fabric.json"),
            "--matrix",
            &format!("{d}/matrix.csv"),
            "--lengths",
            "1,2",
            "--seed",
            "1",
            "--out",
            &format!("{d}/traffic2.json"),
        ])
        .output()
        .expect("run routes");
    assert!(out.status.success(), "routes failed: {out:?}");
    let load: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join("traffic2.json")).unwrap()).unwrap();
    assert_eq!(load["flows"].as_array().unwrap().len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn makespan_reports_a_window() {
    let dir = tmp_dir("makespan");
    let d = dir.to_str().unwrap();
    assert!(bin()
        .args(["demo", "--dir", d, "--n", "6", "--window", "200", "--seed", "9"])
        .status()
        .unwrap()
        .success());
    let out = bin()
        .args([
            "makespan",
            "--fabric",
            &format!("{d}/fabric.json"),
            "--traffic",
            &format!("{d}/traffic.json"),
            "--delta",
            "5",
        ])
        .output()
        .expect("run makespan");
    assert!(out.status.success(), "makespan failed: {out:?}");
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert!(v["makespan_slots"].as_u64().unwrap() > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_flags_fail_cleanly() {
    let out = bin().args(["schedule"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing required flag"), "stderr: {err}");
}
