//! Cross-crate integration tests for the §7/§9 generalizations, driven
//! through the public facade and verified with the slot-level simulator.

use octopus_mhs::core::{
    duplex::octopus_duplex,
    hybrid::{octopus_hybrid, PacketNetModel},
    kport::octopus_kport,
    local::octopus_local,
    multihop_config::octopus_multihop,
    octopus,
    online::OnlineScheduler,
    OctopusConfig,
};
use octopus_mhs::net::duplex::DuplexNetwork;
use octopus_mhs::net::topology;
use octopus_mhs::sim::{resolve, ReconfigModel, SimConfig, Simulator};
use octopus_mhs::traffic::{synthetic, synthetic::SyntheticConfig, Flow, FlowId, TrafficLoad};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg(window: u64, delta: u64) -> OctopusConfig {
    OctopusConfig {
        window,
        delta,
        ..OctopusConfig::default()
    }
}

fn synthetic_world(n: u32, window: u64, seed: u64) -> (octopus_mhs::net::Network, TrafficLoad) {
    let net = topology::complete(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let load = synthetic::generate(&SyntheticConfig::paper_default(n, window), &net, &mut rng);
    (net, load)
}

#[test]
fn kport_schedules_simulate_end_to_end() {
    let (net, load) = synthetic_world(12, 600, 1);
    let c = cfg(600, 10);
    let out = octopus_kport(&net, &load, &c, 2).unwrap();
    // The simulator serves any link set; 2-port configurations replay fine.
    let sim = Simulator::new(
        Some(&net),
        resolve(&load).unwrap(),
        SimConfig {
            delta: 10,
            ..SimConfig::default()
        },
    )
    .unwrap();
    let r = sim.run(&out.schedule).unwrap();
    assert!(r.conserves_packets());
    // Two ports should beat one on the same instance.
    let one = octopus(&net, &load, &c).unwrap();
    let r1 = sim.run(&one.schedule).unwrap();
    assert!(
        r.delivered as f64 >= 0.9 * r1.delivered as f64,
        "2-port {} vs 1-port {}",
        r.delivered,
        r1.delivered
    );
}

#[test]
fn duplex_schedules_simulate_on_projected_fabric() {
    // Duplex ring fabric with bidirectional traffic.
    let n = 8u32;
    let dnet = DuplexNetwork::from_edges(n, (0..n).map(|i| (i, (i + 1) % n))).unwrap();
    let directed = dnet.to_directed();
    let mut flows = Vec::new();
    for i in 0..n {
        flows.push(Flow::single(
            FlowId(i as u64),
            10,
            octopus_mhs::traffic::Route::from_ids([i, (i + 1) % n]).unwrap(),
        ));
        flows.push(Flow::single(
            FlowId((i + n) as u64),
            10,
            octopus_mhs::traffic::Route::from_ids([(i + 1) % n, i]).unwrap(),
        ));
    }
    let load = TrafficLoad::new(flows).unwrap();
    let out = octopus_duplex(&dnet, &load, &cfg(500, 5)).unwrap();
    let sim = Simulator::new(
        Some(&directed),
        resolve(&load).unwrap(),
        SimConfig {
            delta: 5,
            ..SimConfig::default()
        },
    )
    .unwrap();
    let r = sim.run(&out.schedule).unwrap();
    assert_eq!(r.delivered, load.total_packets(), "ample window serves all");
}

#[test]
fn hybrid_offload_plus_circuit_simulation() {
    let (net, load) = synthetic_world(10, 400, 2);
    let c = cfg(400, 30);
    let hy = octopus_hybrid(&net, &load, &c, PacketNetModel::default()).unwrap();
    // The circuit part must still be simulable on the residual load.
    let sim = Simulator::new(
        Some(&net),
        resolve(&hy.circuit_load).unwrap(),
        SimConfig {
            delta: 30,
            ..SimConfig::default()
        },
    )
    .unwrap();
    let r = sim.run(&hy.circuit.schedule).unwrap();
    assert!(r.conserves_packets());
    assert_eq!(
        hy.offloaded + hy.circuit_load.total_packets(),
        load.total_packets(),
        "offload partitions the load"
    );
}

#[test]
fn chain_aware_variant_agrees_with_simulator_chaining() {
    // octopus_multihop plans WITH chaining; the default simulator also
    // chains — planned delivery must be realizable.
    let net = topology::ring(5).unwrap();
    let load = TrafficLoad::new(vec![
        Flow::single(
            FlowId(1),
            12,
            octopus_mhs::traffic::Route::from_ids([0, 1, 2]).unwrap(),
        ),
        Flow::single(
            FlowId(2),
            8,
            octopus_mhs::traffic::Route::from_ids([2, 3, 4]).unwrap(),
        ),
    ])
    .unwrap();
    let c = cfg(400, 25);
    let out = octopus_multihop(&net, &load, &c).unwrap();
    let sim = Simulator::new(
        Some(&net),
        resolve(&load).unwrap(),
        SimConfig {
            delta: 25,
            ..SimConfig::default()
        },
    )
    .unwrap();
    let r = sim.run(&out.schedule).unwrap();
    assert_eq!(
        r.delivered, out.planned_delivered,
        "chain-aware plan replays exactly (same chaining semantics)"
    );
}

#[test]
fn localized_planner_round_trips_through_localized_simulator() {
    let (net, load) = synthetic_world(10, 500, 3);
    let c = cfg(500, 50);
    let out = octopus_local(&net, &load, &c).unwrap();
    let sim = Simulator::new(
        Some(&net),
        resolve(&load).unwrap(),
        SimConfig {
            delta: 50,
            reconfig: ReconfigModel::Localized,
            ..SimConfig::default()
        },
    )
    .unwrap();
    let r = sim.run(&out.schedule).unwrap();
    assert!(r.conserves_packets());
    assert!(
        r.delivered >= out.planned_delivered * 9 / 10,
        "sim {} vs plan {}",
        r.delivered,
        out.planned_delivered
    );
    // Persistence is what the planner optimizes for: its schedule should
    // show some (statistic available via Schedule::stats).
    let stats = out.schedule.stats().unwrap();
    assert!(stats.configurations >= 1);
}

#[test]
fn online_epochs_eventually_serve_everything() {
    let net = topology::complete(8);
    let mut sched = OnlineScheduler::new(net.clone(), cfg(200, 10));
    let mut rng = StdRng::seed_from_u64(4);
    let mut total = 0u64;
    for e in 0..3u64 {
        let burst = synthetic::generate(&SyntheticConfig::paper_default(8, 150), &net, &mut rng);
        // Re-id to avoid collisions across epochs.
        let flows: Vec<Flow> = burst
            .flows()
            .iter()
            .enumerate()
            .map(|(i, f)| Flow {
                id: FlowId(e * 10_000 + i as u64),
                size: f.size,
                routes: f.routes.clone(),
            })
            .collect();
        let arrivals = TrafficLoad::new(flows).unwrap();
        total += arrivals.total_packets();
        sched.run_epoch(&arrivals).unwrap();
    }
    // Drain with quiet epochs.
    for _ in 0..30 {
        if sched.backlog_packets() == 0 {
            break;
        }
        sched.run_epoch(&TrafficLoad::new(vec![]).unwrap()).unwrap();
    }
    assert_eq!(sched.backlog_packets(), 0, "backlog fully drained");
    assert_eq!(sched.lifetime_goodput(), 1.0);
    assert!(total > 0);
}
