//! Approximation-guarantee smoke tests: on instances where full delivery is
//! feasible within the window (so OPT_ψ equals the total packet weight),
//! Octopus's ψ must clear the Theorem 1 floor
//! `(1 − e^{−1/𝒟}) · W/(W+Δ) · OPT_ψ`.

use octopus_mhs::core::{makespan::minimize_makespan, octopus, OctopusConfig};
use octopus_mhs::net::topology;
use octopus_mhs::traffic::{
    synthetic, synthetic::SyntheticConfig, Flow, FlowId, Route, TrafficLoad,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn theorem1_floor(d: u32, window: u64, delta: u64) -> f64 {
    (1.0 - (-1.0 / d as f64).exp()) * window as f64 / (window + delta) as f64
}

/// Runs the check on one instance. `opt_psi` is the full-delivery ψ (every
/// packet's weights sum to 1, so OPT_ψ = total packets when the makespan
/// fits the window).
fn check(net: &octopus_mhs::net::Network, load: &TrafficLoad, delta: u64) {
    let cfg = OctopusConfig {
        delta,
        window: u64::MAX / 4, // probe: find a window with full delivery
        ..OctopusConfig::default()
    };
    let ms = minimize_makespan(net, load, &cfg).expect("servable");
    let window = ms.window * 2; // comfortably feasible
    let out = octopus(
        net,
        load,
        &OctopusConfig {
            delta,
            window,
            ..OctopusConfig::default()
        },
    )
    .unwrap();
    let opt_psi = load.total_packets() as f64;
    let floor = theorem1_floor(load.max_route_hops(), window, delta) * opt_psi;
    assert!(
        out.planned_psi + 1e-9 >= floor,
        "psi {} below Theorem 1 floor {} (D={}, W={}, delta={})",
        out.planned_psi,
        floor,
        load.max_route_hops(),
        window,
        delta
    );
}

#[test]
fn guarantee_holds_on_synthetic_instances() {
    let net = topology::complete(12);
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let load = synthetic::generate(&SyntheticConfig::paper_default(12, 600), &net, &mut rng);
        check(&net, &load, 10);
    }
}

#[test]
fn guarantee_holds_with_long_routes() {
    // D = 4 routes on a sparse ring-with-chords fabric.
    let net = topology::chordal_ring(10, &[3]).unwrap();
    let load = TrafficLoad::new(vec![
        Flow::single(FlowId(1), 40, Route::from_ids([0, 1, 2, 3, 4]).unwrap()),
        Flow::single(FlowId(2), 30, Route::from_ids([5, 6, 7]).unwrap()),
        Flow::single(FlowId(3), 20, Route::from_ids([2, 5]).unwrap()),
        Flow::single(FlowId(4), 50, Route::from_ids([8, 9, 0]).unwrap()),
    ])
    .unwrap();
    check(&net, &load, 25);
}

#[test]
fn guarantee_holds_under_heavy_delta() {
    let net = topology::complete(8);
    let mut rng = StdRng::seed_from_u64(99);
    let load = synthetic::generate(&SyntheticConfig::paper_default(8, 400), &net, &mut rng);
    check(&net, &load, 200);
}

#[test]
fn greedy_score_never_negative_and_psi_matches_benefit_sum() {
    // Internal consistency: planned psi equals the sum of configuration
    // benefits (definition of B and psi).
    let net = topology::complete(10);
    let mut rng = StdRng::seed_from_u64(3);
    let load = synthetic::generate(&SyntheticConfig::paper_default(10, 500), &net, &mut rng);
    let cfg = OctopusConfig {
        delta: 10,
        window: 500,
        ..OctopusConfig::default()
    };
    let out = octopus(&net, &load, &cfg).unwrap();
    // Replay the schedule through fresh bookkeeping and compare.
    use octopus_mhs::core::{HopWeighting, RemainingTraffic};
    let mut tr = RemainingTraffic::new(&load, HopWeighting::Uniform).unwrap();
    let mut benefit_sum = 0.0;
    for c in out.schedule.configs() {
        benefit_sum += tr.apply(c.matching.links(), c.alpha);
    }
    assert!(
        (benefit_sum - out.planned_psi).abs() < 1e-6,
        "replayed benefit {} vs planned psi {}",
        benefit_sum,
        out.planned_psi
    );
}
