//! End-to-end check of the paper's worked Example 1 (Figure 1), spanning
//! the scheduler, the baselines and the simulator.

use octopus_mhs::baselines::eclipse_based_schedule;
use octopus_mhs::core::{octopus, OctopusConfig};
use octopus_mhs::net::{Network, NodeId};
use octopus_mhs::sim::{resolve, SimConfig, Simulator};
use octopus_mhs::traffic::{Flow, FlowId, Route, TrafficLoad};

/// Nodes a=0, b=1, c=2, d=3 and the five links Figure 1 uses.
fn net() -> Network {
    Network::from_edges(4, [(3u32, 0u32), (0, 1), (2, 1), (1, 0), (1, 2)]).unwrap()
}

fn load() -> TrafficLoad {
    TrafficLoad::new(vec![
        Flow::single(FlowId(1), 100, Route::from_ids([0, 1, 2]).unwrap()),
        Flow::single(FlowId(2), 50, Route::from_ids([3, 0, 1]).unwrap()),
        Flow::single(FlowId(3), 50, Route::from_ids([2, 1, 0]).unwrap()),
    ])
    .unwrap()
}

fn cfg() -> OctopusConfig {
    OctopusConfig {
        window: 300,
        delta: 0,
        ..OctopusConfig::default()
    }
}

fn simulate(schedule: &octopus_mhs::net::Schedule) -> octopus_mhs::sim::SimReport {
    let sim = Simulator::new(
        Some(&net()),
        resolve(&load()).unwrap(),
        SimConfig {
            delta: 0,
            ..SimConfig::default()
        },
    )
    .unwrap();
    sim.run(schedule).unwrap()
}

#[test]
fn octopus_finds_the_optimal_plan() {
    let out = octopus(&net(), &load(), &cfg()).unwrap();
    // The optimum delivers all 200 packets with psi = 200 (paper, §4).
    assert_eq!(out.planned_delivered, 200);
    assert!((out.planned_psi - 200.0).abs() < 1e-9);
    let r = simulate(&out.schedule);
    assert_eq!(r.delivered, 200);
    assert!((r.psi - 200.0).abs() < 1e-9);
    assert_eq!(r.stranded + r.never_moved, 0);
}

#[test]
fn octopus_uses_the_window_efficiently() {
    let out = octopus(&net(), &load(), &cfg()).unwrap();
    assert!(out.schedule.total_cost(0) <= 300);
    // The optimal solution needs only 300 slots of work; Octopus should not
    // need more configurations than the 4 of the paper's optimal sequence
    // plus small change.
    assert!(out.schedule.len() <= 6, "got {}", out.schedule.len());
}

#[test]
fn eclipse_based_is_strictly_worse_here() {
    let ecl = eclipse_based_schedule(&net(), &load(), &cfg()).unwrap();
    let r = simulate(&ecl);
    let oct = octopus(&net(), &load(), &cfg()).unwrap();
    let r_oct = simulate(&oct.schedule);
    assert!(
        r.delivered <= r_oct.delivered,
        "eclipse-based {} vs octopus {}",
        r.delivered,
        r_oct.delivered
    );
}

#[test]
fn benefit_example_from_section_4() {
    // B((M4,50), <>) = 0 and B((M4,50), <(M3,50)>) = 25 (paper, §4.1).
    use octopus_mhs::core::{HopWeighting, RemainingTraffic};
    let mut tr = RemainingTraffic::new(&load(), HopWeighting::Uniform).unwrap();
    // M4 = {(b,a)} = {(1,0)}: benefit with nothing scheduled is zero.
    let q = tr.link_queues(4);
    assert_eq!(q.g(1, 0, 50), 0.0);
    // After (M3,50) = {(c,b)}: 50 packets of weight 1/2 wait at b toward a.
    tr.apply(&[(NodeId(2), NodeId(1))], 50);
    let q = tr.link_queues(4);
    assert!((q.g(1, 0, 50) - 25.0).abs() < 1e-12);
    // More generally B((M4,50),(M3,alpha)) = alpha/2 for alpha <= 50.
    let mut tr2 = RemainingTraffic::new(&load(), HopWeighting::Uniform).unwrap();
    tr2.apply(&[(NodeId(2), NodeId(1))], 30);
    let q2 = tr2.link_queues(4);
    assert!((q2.g(1, 0, 50) - 15.0).abs() < 1e-12);
}
