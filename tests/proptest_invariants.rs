//! Property-based invariants across the whole stack: random small fabrics
//! and loads, checking schedule validity, packet conservation, objective
//! accounting and monotonicity.

use octopus_mhs::core::{
    best_configuration, octopus, AlphaSearch, BipartiteFabric, CandidateExtension, HopWeighting,
    LinkQueues, LocalFabric, MatchingKind, OctopusConfig, RemainingTraffic, ScheduleEngine,
    SearchPolicy, TrafficSource,
};
use octopus_mhs::net::{topology, Configuration, Schedule};
use octopus_mhs::sim::{resolve, SimConfig, Simulator};
use octopus_mhs::traffic::{Flow, FlowId, Route, TrafficLoad};
use proptest::prelude::*;

/// Strategy: a small complete fabric plus a random single-route load on it.
fn instance() -> impl Strategy<Value = (u32, TrafficLoad, u64, u64)> {
    (4u32..10)
        .prop_flat_map(|n| {
            let flows =
                prop::collection::vec((0u32..n, 0u32..n, 1u64..80, 0u32..3u32, 0u32..n), 1..12);
            (Just(n), flows, 200u64..1500, 0u64..40)
        })
        .prop_map(|(n, raw, window, delta)| {
            let mut flows = Vec::new();
            let mut id = 0u64;
            for (src, dst, size, extra_hops, via) in raw {
                if src == dst {
                    continue;
                }
                // Build a route of 1..=3 hops through distinct nodes.
                let mut nodes = vec![src];
                if extra_hops >= 1 && via != src && via != dst {
                    nodes.push(via);
                }
                if extra_hops >= 2 {
                    let w = (via + 1) % n;
                    if w != src && w != dst && !nodes.contains(&w) {
                        nodes.push(w);
                    }
                }
                nodes.push(dst);
                if let Ok(route) = Route::from_ids(nodes) {
                    flows.push(Flow::single(FlowId(id), size, route));
                    id += 1;
                }
            }
            (
                n,
                TrafficLoad::new(flows).expect("sequential ids"),
                window,
                delta,
            )
        })
        .prop_filter(
            "need at least one flow and room for a config",
            |(_, load, w, d)| !load.is_empty() && *w > *d + 1,
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn octopus_schedules_are_valid_and_conservative(
        (n, load, window, delta) in instance()
    ) {
        let net = topology::complete(n);
        let cfg = OctopusConfig { window, delta, ..OctopusConfig::default() };
        let out = octopus(&net, &load, &cfg).unwrap();

        // Schedule validity: matchings in the fabric, positive alphas,
        // window respected.
        out.schedule.validate(Some(&net)).unwrap();
        prop_assert!(out.schedule.total_cost(delta) <= window);

        // Simulator conservation (with the default within-configuration
        // chaining, which may deviate from the plan in either direction).
        let sim = Simulator::new(
            Some(&net),
            resolve(&load).unwrap(),
            SimConfig { delta, ..SimConfig::default() },
        ).unwrap();
        let r = sim.run(&out.schedule).unwrap();
        prop_assert!(r.conserves_packets());
        prop_assert!(r.delivered <= load.total_packets());

        // Under NextConfigOnly forwarding the simulator implements exactly
        // the plan's bookkeeping semantics: psi and delivered must agree.
        let sim_plan = Simulator::new(
            Some(&net),
            resolve(&load).unwrap(),
            SimConfig {
                delta,
                forwarding: octopus_mhs::sim::ForwardingMode::NextConfigOnly,
                ..SimConfig::default()
            },
        ).unwrap();
        let rp = sim_plan.run(&out.schedule).unwrap();
        prop_assert!(
            (rp.psi - out.planned_psi).abs() < 1e-6,
            "plan psi {} vs NextConfigOnly sim psi {}", out.planned_psi, rp.psi
        );
        prop_assert_eq!(rp.delivered, out.planned_delivered);
    }

    #[test]
    fn psi_is_monotone_under_schedule_extension(
        (n, load, window, delta) in instance()
    ) {
        let net = topology::complete(n);
        let cfg = OctopusConfig { window, delta, ..OctopusConfig::default() };
        let out = octopus(&net, &load, &cfg).unwrap();
        let sim = Simulator::new(
            Some(&net),
            resolve(&load).unwrap(),
            SimConfig { delta, ..SimConfig::default() },
        ).unwrap();
        // Every prefix of the schedule has psi <= the full schedule's psi.
        let configs: Vec<Configuration> = out.schedule.configs().to_vec();
        let mut prev = 0.0;
        for k in 0..=configs.len() {
            let prefix = Schedule::from(configs[..k].to_vec());
            let r = sim.run(&prefix).unwrap();
            prop_assert!(r.psi + 1e-9 >= prev, "psi dropped: {} -> {}", prev, r.psi);
            prev = r.psi;
        }
    }

    #[test]
    fn delivered_never_exceeds_psi_headroom(
        (n, load, window, delta) in instance()
    ) {
        // Every delivered packet contributes its full weight (1.0 summed
        // over hops) to psi, so delivered <= psi + epsilon.
        let net = topology::complete(n);
        let cfg = OctopusConfig { window, delta, ..OctopusConfig::default() };
        let out = octopus(&net, &load, &cfg).unwrap();
        let sim = Simulator::new(
            Some(&net),
            resolve(&load).unwrap(),
            SimConfig { delta, ..SimConfig::default() },
        ).unwrap();
        let r = sim.run(&out.schedule).unwrap();
        prop_assert!(r.delivered as f64 <= r.psi + 1e-6);
    }

    #[test]
    fn incremental_queue_patching_matches_full_rebuild(
        (n, load, window, delta) in instance()
    ) {
        // Drive the engine one commit at a time; after every commit the
        // incrementally patched snapshot must be identical to a from-scratch
        // rebuild of the link queues (same links, same classes, same g).
        let mut tr = RemainingTraffic::new(&load, HopWeighting::Uniform).unwrap();
        let fabric = BipartiteFabric { kind: MatchingKind::Exact };
        let policy = SearchPolicy::exhaustive();
        let mut engine = ScheduleEngine::new(&mut tr, n, delta);
        let mut used = 0u64;
        while !engine.is_drained() && used + delta < window {
            let budget = window - used - delta;
            let Some(choice) = engine.select(&fabric, budget, CandidateExtension::None, &policy)
            else {
                break;
            };
            engine.commit(&fabric, &choice.matching, choice.alpha).unwrap();
            used += choice.alpha + delta;

            let rebuilt = engine.source().snapshot_queues(n);
            let patched = engine.queues();
            let patched_links: Vec<(u32, u32)> = patched.links().collect();
            let rebuilt_links: Vec<(u32, u32)> = rebuilt.links().collect();
            prop_assert_eq!(&patched_links, &rebuilt_links);
            for (i, j) in rebuilt_links {
                let p = patched.queue(i, j).unwrap();
                let r = rebuilt.queue(i, j).unwrap();
                prop_assert_eq!(p.classes(), r.classes(), "classes differ on ({}, {})", i, j);
                for alpha in [1u64, 2, 5, choice.alpha.max(1)] {
                    prop_assert!(
                        (p.g(alpha) - r.g(alpha)).abs() < 1e-12,
                        "g mismatch on ({}, {}) at alpha {}", i, j, alpha
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_and_sequential_alpha_searches_agree(
        (n, load, _window, delta) in instance()
    ) {
        // The threaded exhaustive search must return the *same* winning
        // configuration as the sequential (pruned) one — same α, same
        // matching, same ψ-rate — for any instance and Δ. The tie-break is a
        // strict total order, so this holds for every worker count and
        // reduction shape. (matchings_computed may differ: pruning skips
        // dominated candidates, the parallel path evaluates all of them.)
        let tr = RemainingTraffic::new(&load, HopWeighting::Uniform).unwrap();
        let queues = tr.link_queues(n);
        for kind in [MatchingKind::Exact, MatchingKind::GreedySort] {
            for cap in [u64::MAX, 64, 7] {
                let seq = best_configuration(
                    &queues, delta, cap, AlphaSearch::Exhaustive, kind, false,
                );
                let par = best_configuration(
                    &queues, delta, cap, AlphaSearch::Exhaustive, kind, true,
                );
                match (seq, par) {
                    (None, None) => {}
                    (Some(s), Some(p)) => {
                        prop_assert_eq!(s.alpha, p.alpha, "kind {:?} cap {}", kind, cap);
                        prop_assert_eq!(&s.matching, &p.matching, "kind {:?} cap {}", kind, cap);
                        prop_assert_eq!(s.score.to_bits(), p.score.to_bits(),
                            "psi-rate differs: {} vs {}", s.score, p.score);
                        prop_assert_eq!(s.benefit.to_bits(), p.benefit.to_bits());
                    }
                    (s, p) => prop_assert!(false, "one path empty: seq {:?} par {:?}", s, p),
                }
            }
        }
    }

    #[test]
    fn tied_psi_rates_resolve_identically_across_paths(
        small in 1u64..40,
        factor in 2u64..6,
    ) {
        // Hand-crafted tie: two disjoint unit-weight links with counts c and
        // f·c, Δ = c. The candidate αs are {c, f·c} and both score exactly 1:
        //   α = c:    (c + c) / (c + Δ)     = 2c / 2c        = 1
        //   α = f·c:  (c + f·c) / (f·c + Δ) = c(1+f) / c(f+1) = 1
        // (bit-exact in f64: numerator equals denominator in both cases).
        // A non-total tie-break would let the parallel reduction's chunk
        // shape pick either α; the strict order must pick the smaller one on
        // every path.
        let c = small;
        let big = c * factor;
        let delta = c;
        let q = LinkQueues::from_weighted_counts(
            4,
            [((0u32, 1u32), 1.0, c), ((2u32, 3u32), 1.0, big)],
        );
        let s1 = (c + c) as f64 / (c + delta) as f64;
        let s2 = (c + big) as f64 / (big + delta) as f64;
        prop_assert_eq!(s1.to_bits(), s2.to_bits());
        let seq = best_configuration(
            &q, delta, u64::MAX, AlphaSearch::Exhaustive, MatchingKind::Exact, false,
        ).unwrap();
        let par = best_configuration(
            &q, delta, u64::MAX, AlphaSearch::Exhaustive, MatchingKind::Exact, true,
        ).unwrap();
        // Both paths must take the α tie-break: the smaller candidate.
        prop_assert_eq!(seq.alpha, c);
        prop_assert_eq!(par.alpha, c);
        prop_assert_eq!(seq.matching, par.matching);
        prop_assert_eq!(seq.score.to_bits(), par.score.to_bits());
    }

    #[test]
    fn multi_alpha_sweep_matches_per_alpha_derivation(
        (n, load, _window, _delta) in instance(),
        cap in 2u64..600,
    ) {
        // The batched sweep must reproduce, per candidate α, exactly the
        // edge list and matching-weight upper bound of the historical
        // one-α-at-a-time derivation — bit-for-bit, since the α search
        // compares and prunes on these numbers.
        let tr = RemainingTraffic::new(&load, HopWeighting::Uniform).unwrap();
        let queues = tr.link_queues(n);
        let candidates = queues.alpha_candidates(cap);
        let sweep = queues.weighted_edges_multi(&candidates);
        prop_assert_eq!(sweep.alphas(), &candidates[..]);
        for (k, &alpha) in candidates.iter().enumerate() {
            prop_assert_eq!(sweep.edge_list(k), queues.weighted_edges(alpha));
            prop_assert_eq!(
                sweep.upper_bound(k).to_bits(),
                queues.matching_weight_upper_bound(alpha).to_bits(),
                "upper bound differs at alpha {}", alpha
            );
        }
    }

    #[test]
    fn batched_select_matches_legacy_per_alpha_evaluation(
        (n, load, window, delta) in instance(),
    ) {
        // `ScheduleEngine::select` runs the batched sweep on reusable
        // workspaces; `ScheduleEngine::evaluate` runs the historical
        // build-a-graph-per-α kernel. For every kernel kind the winner must
        // carry the legacy evaluation's exact matching and benefit, and must
        // dominate every candidate's legacy score (i.e. pruning on the
        // batched bounds never discards the true winner).
        let scale = octopus_mhs::traffic::weight::weight_scale(
            load.max_route_hops().max(1),
        );
        for kind in [
            MatchingKind::Exact,
            MatchingKind::GreedySort,
            MatchingKind::BucketGreedy { scale },
        ] {
            let mut tr = RemainingTraffic::new(&load, HopWeighting::Uniform).unwrap();
            let fabric = BipartiteFabric { kind };
            let mut engine = ScheduleEngine::new(&mut tr, n, delta);
            let budget = window.saturating_sub(delta).max(1);
            let candidates = engine.candidates(budget, CandidateExtension::None);
            let selected =
                engine.select(&fabric, budget, CandidateExtension::None, &SearchPolicy::exhaustive());
            match selected {
                Some(sel) => {
                    let legacy = engine.evaluate(&fabric, sel.alpha);
                    prop_assert_eq!(&sel.matching, &legacy.matching, "kind {:?}", kind);
                    prop_assert_eq!(sel.benefit.to_bits(), legacy.benefit.to_bits());
                    prop_assert_eq!(sel.score.to_bits(), legacy.score.to_bits());
                    for alpha in candidates {
                        let other = engine.evaluate(&fabric, alpha);
                        prop_assert!(
                            other.score.total_cmp(&sel.score).is_le(),
                            "legacy eval at alpha {} out-scores the batched winner", alpha
                        );
                    }
                }
                None => {
                    for alpha in candidates {
                        prop_assert!(engine.evaluate(&fabric, alpha).benefit <= 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn local_fabric_sweep_matches_legacy_evaluation(
        (n, load, window, delta) in instance(),
    ) {
        // The persistence-aware fabric sweeps g(i, j, α + Δ) on links carried
        // over from the previous matching; each step's winner must agree with
        // the legacy per-α evaluation at the same α and `prev` set.
        let mut tr = RemainingTraffic::new(&load, HopWeighting::Uniform).unwrap();
        let mut fabric = LocalFabric {
            kind: MatchingKind::Exact,
            delta,
            prev: std::collections::HashSet::new(),
        };
        let policy = SearchPolicy {
            search: AlphaSearch::Exhaustive,
            parallel: false,
            prefer_larger_alpha: true,
            kernel: octopus_core::ExactKernel::Hungarian,
        };
        let mut engine = ScheduleEngine::new(&mut tr, n, delta);
        let mut used = 0u64;
        for _ in 0..3 {
            if engine.is_drained() || used + delta >= window {
                break;
            }
            let budget = window - used - delta;
            let Some(sel) =
                engine.select(&fabric, budget, CandidateExtension::ShiftDown(delta), &policy)
            else {
                break;
            };
            let legacy = engine.evaluate(&fabric, sel.alpha);
            prop_assert_eq!(&sel.matching, &legacy.matching);
            prop_assert_eq!(sel.benefit.to_bits(), legacy.benefit.to_bits());
            engine.commit(&fabric, &sel.matching, sel.alpha).unwrap();
            fabric.prev = sel.matching.iter().copied().collect();
            used += sel.alpha + delta;
        }
    }

    #[test]
    fn variants_respect_the_same_invariants(
        (n, load, window, delta) in instance()
    ) {
        let net = topology::complete(n);
        let base = OctopusConfig { window, delta, ..OctopusConfig::default() };
        for cfg in [base.octopus_b(), base.octopus_g(load.max_route_hops().max(1))] {
            let out = octopus(&net, &load, &cfg).unwrap();
            out.schedule.validate(Some(&net)).unwrap();
            prop_assert!(out.schedule.total_cost(delta) <= window);
            prop_assert!(out.planned_delivered <= load.total_packets());
        }
    }
}
