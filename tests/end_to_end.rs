//! Cross-crate end-to-end tests on realistic (small) synthetic instances:
//! algorithm orderings, bounds, determinism and schedule validity.

use octopus_mhs::baselines::{
    absolute_upper_bound, eclipse_based_schedule, rotornet_schedule, ub_evaluate,
};
use octopus_mhs::core::{octopus, OctopusConfig};
use octopus_mhs::net::topology;
use octopus_mhs::sim::{resolve, SimConfig, Simulator};
use octopus_mhs::traffic::{synthetic, synthetic::SyntheticConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct World {
    net: octopus_mhs::net::Network,
    load: octopus_mhs::traffic::TrafficLoad,
    cfg: OctopusConfig,
}

fn world(seed: u64) -> World {
    let n = 20;
    let window = 1_200;
    let delta = 15;
    let net = topology::complete(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let load = synthetic::generate(&SyntheticConfig::paper_default(n, window), &net, &mut rng);
    World {
        net,
        load,
        cfg: OctopusConfig {
            window,
            delta,
            ..OctopusConfig::default()
        },
    }
}

fn simulate(w: &World, schedule: &octopus_mhs::net::Schedule) -> octopus_mhs::sim::SimReport {
    let sim = Simulator::new(
        Some(&w.net),
        resolve(&w.load).unwrap(),
        SimConfig {
            delta: w.cfg.delta,
            ..SimConfig::default()
        },
    )
    .unwrap();
    sim.run(schedule).unwrap()
}

#[test]
fn octopus_beats_eclipse_based_and_rotornet() {
    for seed in [1, 2, 3] {
        let w = world(seed);
        let oct = octopus(&w.net, &w.load, &w.cfg).unwrap();
        let r_oct = simulate(&w, &oct.schedule);

        let ecl = eclipse_based_schedule(&w.net, &w.load, &w.cfg).unwrap();
        let r_ecl = simulate(&w, &ecl);

        let rot = rotornet_schedule(w.net.num_nodes(), w.cfg.delta, w.cfg.window, 0);
        let sim_free = Simulator::new(
            None,
            resolve(&w.load).unwrap(),
            SimConfig {
                delta: w.cfg.delta,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let r_rot = sim_free.run(&rot).unwrap();

        assert!(
            r_oct.delivered as f64 >= 0.95 * r_ecl.delivered as f64,
            "seed {seed}: octopus {} vs eclipse-based {}",
            r_oct.delivered,
            r_ecl.delivered
        );
        assert!(
            r_oct.delivered > r_rot.delivered,
            "seed {seed}: octopus {} vs rotornet {}",
            r_oct.delivered,
            r_rot.delivered
        );
        assert!(r_oct.link_utilization() > r_rot.link_utilization());
    }
}

#[test]
fn bounds_dominate_octopus() {
    for seed in [4, 5] {
        let w = world(seed);
        let oct = octopus(&w.net, &w.load, &w.cfg).unwrap();
        let r = simulate(&w, &oct.schedule);
        let abs = absolute_upper_bound(&w.net, &w.load, w.cfg.window);
        assert!(
            r.delivered_fraction() <= abs + 1e-9,
            "seed {seed}: delivered {} above absolute bound {}",
            r.delivered_fraction(),
            abs
        );
        let ub = ub_evaluate(&w.net, &w.load, &w.cfg);
        // UB relaxes ordering; it tracks or beats Octopus (both greedy, so a
        // small tolerance).
        assert!(
            ub.delivered_fraction() + 0.1 >= r.delivered_fraction(),
            "seed {seed}: UB {} vs octopus {}",
            ub.delivered_fraction(),
            r.delivered_fraction()
        );
    }
}

#[test]
fn schedules_are_valid_and_within_window() {
    let w = world(6);
    let oct = octopus(&w.net, &w.load, &w.cfg).unwrap();
    oct.schedule.validate(Some(&w.net)).unwrap();
    assert!(oct.schedule.total_cost(w.cfg.delta) <= w.cfg.window);
    let ecl = eclipse_based_schedule(&w.net, &w.load, &w.cfg).unwrap();
    ecl.validate(Some(&w.net)).unwrap();
    assert!(ecl.total_cost(w.cfg.delta) <= w.cfg.window);
}

#[test]
fn everything_is_deterministic() {
    let w1 = world(7);
    let w2 = world(7);
    assert_eq!(w1.load, w2.load, "generation is seed-deterministic");
    let a = octopus(&w1.net, &w1.load, &w1.cfg).unwrap();
    let b = octopus(&w2.net, &w2.load, &w2.cfg).unwrap();
    assert_eq!(a.schedule, b.schedule, "scheduling is deterministic");
    assert_eq!(simulate(&w1, &a.schedule), simulate(&w2, &b.schedule));
}

#[test]
fn variants_stay_close_to_octopus() {
    let w = world(8);
    let oct = simulate(&w, &octopus(&w.net, &w.load, &w.cfg).unwrap().schedule);
    let b = simulate(
        &w,
        &octopus(&w.net, &w.load, &w.cfg.octopus_b())
            .unwrap()
            .schedule,
    );
    let g = simulate(
        &w,
        &octopus(&w.net, &w.load, &w.cfg.octopus_g(w.load.max_route_hops()))
            .unwrap()
            .schedule,
    );
    // The paper: Octopus-B near-identical; Octopus-G >= 95% of Octopus.
    assert!(
        b.delivered as f64 >= 0.9 * oct.delivered as f64,
        "octopus-b {} vs {}",
        b.delivered,
        oct.delivered
    );
    assert!(
        g.delivered as f64 >= 0.85 * oct.delivered as f64,
        "octopus-g {} vs {}",
        g.delivered,
        oct.delivered
    );
}

#[test]
fn schedule_serde_round_trip() {
    let w = world(9);
    let out = octopus(&w.net, &w.load, &w.cfg).unwrap();
    let json = serde_json::to_string(&out.schedule).unwrap();
    let back: octopus_mhs::net::Schedule = serde_json::from_str(&json).unwrap();
    assert_eq!(out.schedule, back);
    // A deserialized schedule drives the simulator identically.
    assert_eq!(simulate(&w, &out.schedule), simulate(&w, &back));
}
