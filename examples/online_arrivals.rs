//! Online operation: flows arrive epoch by epoch, leftovers roll forward —
//! the multi-window mode §4 of the paper sketches and §9 lists as future
//! work. Compares the Octopus-per-epoch scheduler against a
//! hysteresis-style single-matching policy (Wang–Javidi-flavored).
//!
//! Run with: `cargo run --release --example online_arrivals`

use octopus_mhs::core::online::{HysteresisScheduler, OnlineScheduler};
use octopus_mhs::core::OctopusConfig;
use octopus_mhs::net::topology;
use octopus_mhs::traffic::{synthetic, synthetic::SyntheticConfig, Flow, TrafficLoad};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 16;
    let epoch = 600; // slots per epoch
    let delta = 20;
    let epochs = 12;
    let net = topology::complete(n);
    let cfg = OctopusConfig {
        window: epoch,
        delta,
        ..OctopusConfig::default()
    };

    let mut octopus = OnlineScheduler::new(net.clone(), cfg);
    let mut hysteresis = HysteresisScheduler::new(net.clone(), cfg, 0.1);
    let mut rng = StdRng::seed_from_u64(77);
    let mut next_id = 0u64;

    println!("epoch | arrivals | octopus: served backlog | hysteresis: served backlog");
    for e in 0..epochs {
        // Bursty arrivals: quiet epochs interleaved with heavy ones.
        let arrivals = if e % 3 == 2 {
            TrafficLoad::new(vec![]).unwrap()
        } else {
            let burst = synthetic::generate(
                &SyntheticConfig::paper_default(n, epoch / 2),
                &net,
                &mut rng,
            );
            // Re-number so ids never collide across epochs; keep a random
            // subset to vary intensity.
            let flows: Vec<Flow> = burst
                .flows()
                .iter()
                .filter(|_| rng.gen_bool(0.4))
                .map(|f| {
                    let id = next_id;
                    next_id += 1;
                    Flow {
                        id: octopus_mhs::traffic::FlowId(id),
                        size: f.size,
                        routes: f.routes.clone(),
                    }
                })
                .collect();
            TrafficLoad::new(flows).unwrap()
        };
        let a = octopus.run_epoch(&arrivals).expect("valid arrivals");
        let h = hysteresis.run_epoch(&arrivals).expect("valid arrivals");
        println!(
            "{e:>5} | {:>8} | {:>15} {:>7} | {:>17} {:>8}",
            a.arrived, a.delivered, a.backlog, h.delivered, h.backlog
        );
    }
    println!(
        "\nlifetime goodput: octopus-online {:.1}%, hysteresis {:.1}%",
        octopus.lifetime_goodput() * 100.0,
        hysteresis.lifetime_goodput() * 100.0
    );
    println!(
        "remaining backlog: octopus-online {}, hysteresis {}",
        octopus.backlog_packets(),
        hysteresis.backlog_packets()
    );
}
