//! Multi-route load balancing with **Octopus+**: when flows come with
//! several candidate routes (e.g. Valiant-style indirections for skewed
//! traffic), choosing routes jointly with the schedule beats committing to
//! random routes up front.
//!
//! Run with: `cargo run --release --example multi_route_lb`

use octopus_mhs::core::octopus_plus::{octopus_plus, octopus_random, PlusConfig};
use octopus_mhs::core::OctopusConfig;
use octopus_mhs::net::topology;
use octopus_mhs::sim::{resolve, SimConfig, Simulator};
use octopus_mhs::traffic::{synthetic, synthetic::SyntheticConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 40;
    let window = 3_000;
    let delta = 20;
    let net = topology::complete(n);
    let mut rng = StdRng::seed_from_u64(99);

    // Skewed traffic with 10 candidate routes per flow (lengths 1-3), the
    // paper's Fig 9(b) setting.
    let synth = SyntheticConfig::paper_default(n, window).with_skew(0.1);
    let load = synthetic::generate_with_routes(&synth, &net, &mut rng, 10);
    println!(
        "load: {} flows x up to 10 candidate routes, {} packets",
        load.len(),
        load.total_packets()
    );

    let base = OctopusConfig {
        window,
        delta,
        ..OctopusConfig::default()
    };
    let sim_cfg = SimConfig {
        delta,
        ..SimConfig::default()
    };

    // Octopus+ chooses routes and configurations jointly (with backtracking
    // to direct links when that unlocks progress).
    let plus = octopus_plus(
        &net,
        &load,
        &PlusConfig {
            base,
            backtracking: true,
        },
    )
    .expect("valid instance");
    let sim = Simulator::new(Some(&net), plus.resolved.clone(), sim_cfg).expect("routes fit");
    let r_plus = sim.run(&plus.schedule).expect("fits window");

    // Baseline: pick one route per flow uniformly at random, then run plain
    // Octopus.
    let (rand_out, rand_load) =
        octopus_random(&net, &load, &base, &mut rng).expect("valid instance");
    let sim = Simulator::new(
        Some(&net),
        resolve(&rand_load).expect("single routes"),
        sim_cfg,
    )
    .expect("routes fit");
    let r_rand = sim.run(&rand_out.schedule).expect("fits window");

    println!(
        "octopus+:       {:.1}% delivered ({} configurations)",
        r_plus.delivered_fraction() * 100.0,
        plus.schedule.len()
    );
    println!(
        "octopus-random: {:.1}% delivered ({} configurations)",
        r_rand.delivered_fraction() * 100.0,
        rand_out.schedule.len()
    );
    let direct = plus
        .resolved
        .iter()
        .filter(|f| f.route.is_direct())
        .map(|f| f.size)
        .sum::<u64>();
    println!(
        "octopus+ routed {:.1}% of packets over direct links",
        100.0 * direct as f64 / load.total_packets() as f64
    );
}
