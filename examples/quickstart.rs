//! Quickstart: schedule a bursty multi-hop traffic load on a small circuit
//! fabric with Octopus, then verify the schedule with the slot-level
//! simulator.
//!
//! Run with: `cargo run --release --example quickstart`

use octopus_mhs::core::{octopus, OctopusConfig};
use octopus_mhs::net::topology;
use octopus_mhs::sim::{resolve, SimConfig, Simulator};
use octopus_mhs::traffic::{synthetic, synthetic::SyntheticConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A 24-node fabric where every port pair can be circuit-connected (the
    // classic single-crossbar model). Sparse fabrics work the same way —
    // see the fso_datacenter example.
    let n = 24;
    let net = topology::complete(n);

    // The paper's synthetic workload: per port, 4 large flows carry 70% of
    // the traffic and 12 small flows the rest; routes are 1-3 hops.
    let window = 2_000; // slots
    let delta = 20; // reconfiguration delay, in slots
    let mut rng = StdRng::seed_from_u64(2020);
    let load = synthetic::generate(&SyntheticConfig::paper_default(n, window), &net, &mut rng);
    println!("fabric: {n} nodes ({} potential links)", net.num_edges());
    println!(
        "load:   {} flows, {} packets, max route {} hops",
        load.len(),
        load.total_packets(),
        load.max_route_hops()
    );

    // Schedule with Octopus: a sequence of (matching, duration)
    // configurations whose total cost (durations + reconfigurations) fits
    // the window.
    let cfg = OctopusConfig {
        window,
        delta,
        ..OctopusConfig::default()
    };
    let out = octopus(&net, &load, &cfg).expect("valid instance");
    println!(
        "octopus: {} configurations, cost {}/{} slots, planned delivery {:.1}%",
        out.schedule.len(),
        out.schedule.total_cost(delta),
        window,
        100.0 * out.planned_delivered as f64 / load.total_packets() as f64
    );

    // Measure for real: the simulator moves one packet per active link per
    // slot, VOQs served highest-weight-first then lowest-flow-ID.
    let sim = Simulator::new(
        Some(&net),
        resolve(&load).expect("single-route load"),
        SimConfig {
            delta,
            ..SimConfig::default()
        },
    )
    .expect("routes fit the fabric");
    let report = sim.run(&out.schedule).expect("schedule fits the window");
    println!(
        "simulated: {:.1}% delivered, {:.1}% link utilization, psi = {:.0}",
        report.delivered_fraction() * 100.0,
        report.link_utilization() * 100.0,
        report.psi
    );
    assert!(report.conserves_packets());
}
