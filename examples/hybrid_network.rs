//! Hybrid circuit + packet scheduling (§7): mice ride the packet switch,
//! elephants get circuits.
//!
//! Run with: `cargo run --release --example hybrid_network`

use octopus_mhs::core::hybrid::{octopus_hybrid, PacketNetModel};
use octopus_mhs::core::{octopus, OctopusConfig};
use octopus_mhs::net::topology;
use octopus_mhs::traffic::{Flow, FlowId, Route, TrafficLoad};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 30;
    let window = 1_500;
    let delta = 40; // an expensive fabric: mice hurt
    let net = topology::complete(n);
    let mut rng = StdRng::seed_from_u64(5);

    // Elephants and mice: a few huge flows plus many tiny ones.
    let mut flows = Vec::new();
    let mut id = 0u64;
    for _ in 0..12 {
        let (s, d) = distinct_pair(&mut rng, n);
        flows.push(Flow::single(
            FlowId(id),
            rng.gen_range(400..900),
            Route::from_ids([s, d]).expect("distinct"),
        ));
        id += 1;
    }
    for _ in 0..150 {
        let (s, d) = distinct_pair(&mut rng, n);
        flows.push(Flow::single(
            FlowId(id),
            rng.gen_range(1..12),
            Route::from_ids([s, d]).expect("distinct"),
        ));
        id += 1;
    }
    let load = TrafficLoad::new(flows).expect("unique ids");
    println!(
        "load: {} flows, {} packets (12 elephants + 150 mice)",
        load.len(),
        load.total_packets()
    );

    let cfg = OctopusConfig {
        window,
        delta,
        ..OctopusConfig::default()
    };

    let circuit_only = octopus(&net, &load, &cfg).expect("valid instance");
    println!(
        "circuit only:  planned {:>6} packets ({} configurations)",
        circuit_only.planned_delivered,
        circuit_only.schedule.len()
    );

    let hybrid = octopus_hybrid(
        &net,
        &load,
        &cfg,
        PacketNetModel {
            bandwidth_ratio: 10,
        },
    )
    .expect("valid instance");
    println!(
        "hybrid:        planned {:>6} packets ({} offloaded to the packet net, {} circuit configurations)",
        hybrid.planned_delivered_total(),
        hybrid.offloaded,
        hybrid.circuit.schedule.len()
    );
    let mice_offloaded = hybrid
        .packet_offload
        .iter()
        .filter(|&&(id, _)| id.0 >= 12)
        .count();
    println!("mice offloaded: {mice_offloaded}/150");
}

fn distinct_pair(rng: &mut StdRng, n: u32) -> (u32, u32) {
    loop {
        let s = rng.gen_range(0..n);
        let d = rng.gen_range(0..n);
        if s != d {
            return (s, d);
        }
    }
}
