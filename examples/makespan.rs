//! Makespan minimization (§7): find the shortest window that fully
//! evacuates a traffic burst, and compare the practical Octopus variants on
//! the way.
//!
//! Run with: `cargo run --release --example makespan`

use octopus_mhs::core::makespan::minimize_makespan;
use octopus_mhs::core::{octopus, OctopusConfig};
use octopus_mhs::net::topology;
use octopus_mhs::traffic::{synthetic, synthetic::SyntheticConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let n = 20;
    let delta = 15;
    let net = topology::complete(n);
    let mut rng = StdRng::seed_from_u64(31);
    let load = synthetic::generate(&SyntheticConfig::paper_default(n, 1_000), &net, &mut rng);
    println!(
        "burst: {} flows, {} packets, routes up to {} hops",
        load.len(),
        load.total_packets(),
        load.max_route_hops()
    );

    let cfg = OctopusConfig {
        delta,
        ..OctopusConfig::default()
    };
    let t = Instant::now();
    let ms = minimize_makespan(&net, &load, &cfg).expect("load is servable");
    println!(
        "makespan: {} slots ({} configurations, found in {:.2?})",
        ms.window,
        ms.output.schedule.len(),
        t.elapsed()
    );

    // How do the practical variants trade quality for speed at this window?
    let at = |cfg: OctopusConfig, label: &str| {
        let c = OctopusConfig {
            window: ms.window,
            ..cfg
        };
        let t = Instant::now();
        let out = octopus(&net, &load, &c).expect("valid instance");
        println!(
            "{label:<12} planned {:>6}/{} packets, {:>4} matchings, {:.2?}",
            out.planned_delivered,
            load.total_packets(),
            out.matchings_computed,
            t.elapsed()
        );
    };
    at(cfg, "octopus");
    at(cfg.octopus_b(), "octopus-b");
    at(cfg.octopus_g(load.max_route_hops()), "octopus-g");
}
