//! FSO data center: scheduling on an **incomplete** fabric — the scenario
//! that motivates multi-hop scheduling in the first place.
//!
//! Free-space-optics fabrics (FireFly-style) cannot offer a complete
//! topology: each rack sees only a subset of peers, so some traffic *must*
//! route through intermediate racks. This example builds a random 6-regular
//! fabric over 60 racks, routes flows along shortest feasible paths, and
//! compares Octopus against the Eclipse-Based baseline. It then shows the
//! two §7 generalizations in action: racks with 2 transceivers (K-port) and
//! bidirectional FSO links (duplex).
//!
//! Run with: `cargo run --release --example fso_datacenter`

use octopus_mhs::baselines::eclipse_based_schedule;
use octopus_mhs::core::{duplex::octopus_duplex, kport::octopus_kport, octopus, OctopusConfig};
use octopus_mhs::net::duplex::DuplexNetwork;
use octopus_mhs::net::topology;
use octopus_mhs::sim::{resolve, SimConfig, Simulator};
use octopus_mhs::traffic::{synthetic, Flow, FlowId, TrafficLoad};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n = 60;
    let degree = 6;
    let window = 4_000;
    let delta = 20;
    let mut rng = StdRng::seed_from_u64(7);
    let net = topology::random_regular(n, degree, &mut rng).expect("valid fabric");
    println!(
        "FSO fabric: {n} racks, {degree} terminals each, diameter {:?}",
        net.diameter()
    );

    // Traffic between random rack pairs; routes sampled inside the sparse
    // fabric (1-3 hops where feasible).
    let mut flows = Vec::new();
    let mut id = 0u64;
    while flows.len() < 150 {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        if src == dst {
            continue;
        }
        let hops = rng.gen_range(1..=3);
        let route = (hops..=3).find_map(|h| {
            synthetic::random_route(
                &net,
                octopus_mhs::net::NodeId(src),
                octopus_mhs::net::NodeId(dst),
                h,
                &mut rng,
            )
        });
        if let Some(route) = route {
            flows.push(Flow::single(FlowId(id), rng.gen_range(50..400), route));
            id += 1;
        }
    }
    let load = TrafficLoad::new(flows).expect("unique ids");
    println!(
        "load: {} flows, {} packets",
        load.len(),
        load.total_packets()
    );

    let cfg = OctopusConfig {
        window,
        delta,
        ..OctopusConfig::default()
    };
    let sim = Simulator::new(
        Some(&net),
        resolve(&load).expect("single routes"),
        SimConfig {
            delta,
            ..SimConfig::default()
        },
    )
    .expect("routes fit fabric");

    let oct = octopus(&net, &load, &cfg).expect("valid instance");
    let r_oct = sim.run(&oct.schedule).expect("fits window");
    let ecl = eclipse_based_schedule(&net, &load, &cfg).expect("valid instance");
    let r_ecl = sim.run(&ecl).expect("fits window");
    println!(
        "octopus:        {:.1}% delivered ({:.1}% utilization)",
        r_oct.delivered_fraction() * 100.0,
        r_oct.link_utilization() * 100.0
    );
    println!(
        "eclipse-based:  {:.1}% delivered ({:.1}% utilization)",
        r_ecl.delivered_fraction() * 100.0,
        r_ecl.link_utilization() * 100.0
    );

    // §7: each rack has 2 FSO terminals -> 2 ports per node.
    let k2 = octopus_kport(&net, &load, &cfg, 2).expect("valid instance");
    println!(
        "octopus, 2 ports/rack: planned {:.1}% in {} configurations",
        100.0 * k2.planned_delivered as f64 / load.total_packets() as f64,
        k2.schedule.len()
    );

    // §7: bidirectional FSO links -> duplex fabric over the same terminals.
    let dnet = DuplexNetwork::from_edges(n, net.edges().iter().map(|&(a, b)| (a.0, b.0)))
        .expect("valid duplex fabric");
    let ddir = dnet.to_directed();
    // Re-check route feasibility in the duplex projection (it is a superset
    // of the directed fabric, so the same load validates).
    load.validate(&ddir).expect("superset fabric");
    let dx = octopus_duplex(&dnet, &load, &cfg).expect("valid instance");
    println!(
        "octopus, duplex links: planned {:.1}% in {} configurations",
        100.0 * dx.planned_delivered as f64 / load.total_packets() as f64,
        dx.schedule.len()
    );
}
