/root/repo/target/release/examples/fso_datacenter-a9c46a460d87143b.d: examples/fso_datacenter.rs

/root/repo/target/release/examples/fso_datacenter-a9c46a460d87143b: examples/fso_datacenter.rs

examples/fso_datacenter.rs:
