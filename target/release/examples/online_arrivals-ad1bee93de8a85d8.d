/root/repo/target/release/examples/online_arrivals-ad1bee93de8a85d8.d: examples/online_arrivals.rs

/root/repo/target/release/examples/online_arrivals-ad1bee93de8a85d8: examples/online_arrivals.rs

examples/online_arrivals.rs:
