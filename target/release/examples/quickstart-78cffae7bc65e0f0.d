/root/repo/target/release/examples/quickstart-78cffae7bc65e0f0.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-78cffae7bc65e0f0: examples/quickstart.rs

examples/quickstart.rs:
