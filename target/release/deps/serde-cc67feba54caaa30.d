/root/repo/target/release/deps/serde-cc67feba54caaa30.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-cc67feba54caaa30.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-cc67feba54caaa30.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
