/root/repo/target/release/deps/serde_derive-ef2f1fa9502f5470.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-ef2f1fa9502f5470.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
