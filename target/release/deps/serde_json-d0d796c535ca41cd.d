/root/repo/target/release/deps/serde_json-d0d796c535ca41cd.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-d0d796c535ca41cd.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-d0d796c535ca41cd.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
