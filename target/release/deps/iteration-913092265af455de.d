/root/repo/target/release/deps/iteration-913092265af455de.d: crates/bench/benches/iteration.rs

/root/repo/target/release/deps/iteration-913092265af455de: crates/bench/benches/iteration.rs

crates/bench/benches/iteration.rs:
