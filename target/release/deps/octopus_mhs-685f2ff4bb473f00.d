/root/repo/target/release/deps/octopus_mhs-685f2ff4bb473f00.d: src/lib.rs

/root/repo/target/release/deps/liboctopus_mhs-685f2ff4bb473f00.rlib: src/lib.rs

/root/repo/target/release/deps/liboctopus_mhs-685f2ff4bb473f00.rmeta: src/lib.rs

src/lib.rs:
