/root/repo/target/release/deps/octopus_net-e5de4b556b361515.d: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/config.rs crates/net/src/duplex.rs crates/net/src/error.rs crates/net/src/graph.rs crates/net/src/matching.rs crates/net/src/node.rs crates/net/src/topology.rs

/root/repo/target/release/deps/liboctopus_net-e5de4b556b361515.rlib: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/config.rs crates/net/src/duplex.rs crates/net/src/error.rs crates/net/src/graph.rs crates/net/src/matching.rs crates/net/src/node.rs crates/net/src/topology.rs

/root/repo/target/release/deps/liboctopus_net-e5de4b556b361515.rmeta: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/config.rs crates/net/src/duplex.rs crates/net/src/error.rs crates/net/src/graph.rs crates/net/src/matching.rs crates/net/src/node.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/analysis.rs:
crates/net/src/config.rs:
crates/net/src/duplex.rs:
crates/net/src/error.rs:
crates/net/src/graph.rs:
crates/net/src/matching.rs:
crates/net/src/node.rs:
crates/net/src/topology.rs:
