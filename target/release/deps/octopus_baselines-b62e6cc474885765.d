/root/repo/target/release/deps/octopus_baselines-b62e6cc474885765.d: crates/baselines/src/lib.rs crates/baselines/src/eclipse.rs crates/baselines/src/eclipse_pp.rs crates/baselines/src/one_hop.rs crates/baselines/src/rotornet.rs crates/baselines/src/solstice.rs crates/baselines/src/ub.rs

/root/repo/target/release/deps/liboctopus_baselines-b62e6cc474885765.rlib: crates/baselines/src/lib.rs crates/baselines/src/eclipse.rs crates/baselines/src/eclipse_pp.rs crates/baselines/src/one_hop.rs crates/baselines/src/rotornet.rs crates/baselines/src/solstice.rs crates/baselines/src/ub.rs

/root/repo/target/release/deps/liboctopus_baselines-b62e6cc474885765.rmeta: crates/baselines/src/lib.rs crates/baselines/src/eclipse.rs crates/baselines/src/eclipse_pp.rs crates/baselines/src/one_hop.rs crates/baselines/src/rotornet.rs crates/baselines/src/solstice.rs crates/baselines/src/ub.rs

crates/baselines/src/lib.rs:
crates/baselines/src/eclipse.rs:
crates/baselines/src/eclipse_pp.rs:
crates/baselines/src/one_hop.rs:
crates/baselines/src/rotornet.rs:
crates/baselines/src/solstice.rs:
crates/baselines/src/ub.rs:
