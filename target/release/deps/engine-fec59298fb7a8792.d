/root/repo/target/release/deps/engine-fec59298fb7a8792.d: crates/bench/benches/engine.rs

/root/repo/target/release/deps/engine-fec59298fb7a8792: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
