/root/repo/target/release/deps/experiments-9d2e13df9b4126f1.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-9d2e13df9b4126f1: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
