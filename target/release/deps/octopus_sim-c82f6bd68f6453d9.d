/root/repo/target/release/deps/octopus_sim-c82f6bd68f6453d9.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs

/root/repo/target/release/deps/liboctopus_sim-c82f6bd68f6453d9.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs

/root/repo/target/release/deps/liboctopus_sim-c82f6bd68f6453d9.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
