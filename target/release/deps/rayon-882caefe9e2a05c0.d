/root/repo/target/release/deps/rayon-882caefe9e2a05c0.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-882caefe9e2a05c0.rlib: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-882caefe9e2a05c0.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
