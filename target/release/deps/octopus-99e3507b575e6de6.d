/root/repo/target/release/deps/octopus-99e3507b575e6de6.d: src/bin/octopus.rs

/root/repo/target/release/deps/octopus-99e3507b575e6de6: src/bin/octopus.rs

src/bin/octopus.rs:
