/root/repo/target/release/deps/octopus_bench-d7ec6dc1a9ec7719.d: crates/bench/src/lib.rs crates/bench/src/runners.rs crates/bench/src/table.rs

/root/repo/target/release/deps/liboctopus_bench-d7ec6dc1a9ec7719.rlib: crates/bench/src/lib.rs crates/bench/src/runners.rs crates/bench/src/table.rs

/root/repo/target/release/deps/liboctopus_bench-d7ec6dc1a9ec7719.rmeta: crates/bench/src/lib.rs crates/bench/src/runners.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/runners.rs:
crates/bench/src/table.rs:
