/root/repo/target/release/deps/octopus_traffic-aab2fafdc515e676.d: crates/traffic/src/lib.rs crates/traffic/src/flow.rs crates/traffic/src/synthetic.rs crates/traffic/src/traces.rs crates/traffic/src/weight.rs

/root/repo/target/release/deps/liboctopus_traffic-aab2fafdc515e676.rlib: crates/traffic/src/lib.rs crates/traffic/src/flow.rs crates/traffic/src/synthetic.rs crates/traffic/src/traces.rs crates/traffic/src/weight.rs

/root/repo/target/release/deps/liboctopus_traffic-aab2fafdc515e676.rmeta: crates/traffic/src/lib.rs crates/traffic/src/flow.rs crates/traffic/src/synthetic.rs crates/traffic/src/traces.rs crates/traffic/src/weight.rs

crates/traffic/src/lib.rs:
crates/traffic/src/flow.rs:
crates/traffic/src/synthetic.rs:
crates/traffic/src/traces.rs:
crates/traffic/src/weight.rs:
