/root/repo/target/release/deps/octopus_matching-93bccc3add4220d6.d: crates/matching/src/lib.rs crates/matching/src/blossom.rs crates/matching/src/brute.rs crates/matching/src/bvn.rs crates/matching/src/general.rs crates/matching/src/greedy.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/bipartite.rs crates/matching/src/graph.rs

/root/repo/target/release/deps/liboctopus_matching-93bccc3add4220d6.rlib: crates/matching/src/lib.rs crates/matching/src/blossom.rs crates/matching/src/brute.rs crates/matching/src/bvn.rs crates/matching/src/general.rs crates/matching/src/greedy.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/bipartite.rs crates/matching/src/graph.rs

/root/repo/target/release/deps/liboctopus_matching-93bccc3add4220d6.rmeta: crates/matching/src/lib.rs crates/matching/src/blossom.rs crates/matching/src/brute.rs crates/matching/src/bvn.rs crates/matching/src/general.rs crates/matching/src/greedy.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/bipartite.rs crates/matching/src/graph.rs

crates/matching/src/lib.rs:
crates/matching/src/blossom.rs:
crates/matching/src/brute.rs:
crates/matching/src/bvn.rs:
crates/matching/src/general.rs:
crates/matching/src/greedy.rs:
crates/matching/src/hopcroft_karp.rs:
crates/matching/src/bipartite.rs:
crates/matching/src/graph.rs:
