/root/repo/target/debug/deps/octopus_sim-460f1bfee791e9c4.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs

/root/repo/target/debug/deps/liboctopus_sim-460f1bfee791e9c4.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs

/root/repo/target/debug/deps/liboctopus_sim-460f1bfee791e9c4.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
