/root/repo/target/debug/deps/proptests-b1f8897ec3494ebc.d: crates/traffic/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b1f8897ec3494ebc: crates/traffic/tests/proptests.rs

crates/traffic/tests/proptests.rs:
