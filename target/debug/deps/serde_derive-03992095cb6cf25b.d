/root/repo/target/debug/deps/serde_derive-03992095cb6cf25b.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-03992095cb6cf25b: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
