/root/repo/target/debug/deps/experiments-c68c0721f60a85f3.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-c68c0721f60a85f3: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
