/root/repo/target/debug/deps/octopus_traffic-6d9adb970b8f6ecc.d: crates/traffic/src/lib.rs crates/traffic/src/flow.rs crates/traffic/src/synthetic.rs crates/traffic/src/traces.rs crates/traffic/src/weight.rs Cargo.toml

/root/repo/target/debug/deps/liboctopus_traffic-6d9adb970b8f6ecc.rmeta: crates/traffic/src/lib.rs crates/traffic/src/flow.rs crates/traffic/src/synthetic.rs crates/traffic/src/traces.rs crates/traffic/src/weight.rs Cargo.toml

crates/traffic/src/lib.rs:
crates/traffic/src/flow.rs:
crates/traffic/src/synthetic.rs:
crates/traffic/src/traces.rs:
crates/traffic/src/weight.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
