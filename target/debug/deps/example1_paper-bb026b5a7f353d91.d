/root/repo/target/debug/deps/example1_paper-bb026b5a7f353d91.d: tests/example1_paper.rs

/root/repo/target/debug/deps/example1_paper-bb026b5a7f353d91: tests/example1_paper.rs

tests/example1_paper.rs:
