/root/repo/target/debug/deps/serde-88eefa1525ce832c.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-88eefa1525ce832c.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-88eefa1525ce832c.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
