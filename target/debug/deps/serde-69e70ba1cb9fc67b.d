/root/repo/target/debug/deps/serde-69e70ba1cb9fc67b.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-69e70ba1cb9fc67b: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
