/root/repo/target/debug/deps/octopus_core-84195847a932a2c0.d: crates/core/src/lib.rs crates/core/src/best_config.rs crates/core/src/error.rs crates/core/src/octopus.rs crates/core/src/state.rs crates/core/src/duplex.rs crates/core/src/engine.rs crates/core/src/hybrid.rs crates/core/src/kport.rs crates/core/src/local.rs crates/core/src/makespan.rs crates/core/src/multihop_config.rs crates/core/src/octopus_plus.rs crates/core/src/online.rs Cargo.toml

/root/repo/target/debug/deps/liboctopus_core-84195847a932a2c0.rmeta: crates/core/src/lib.rs crates/core/src/best_config.rs crates/core/src/error.rs crates/core/src/octopus.rs crates/core/src/state.rs crates/core/src/duplex.rs crates/core/src/engine.rs crates/core/src/hybrid.rs crates/core/src/kport.rs crates/core/src/local.rs crates/core/src/makespan.rs crates/core/src/multihop_config.rs crates/core/src/octopus_plus.rs crates/core/src/online.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/best_config.rs:
crates/core/src/error.rs:
crates/core/src/octopus.rs:
crates/core/src/state.rs:
crates/core/src/duplex.rs:
crates/core/src/engine.rs:
crates/core/src/hybrid.rs:
crates/core/src/kport.rs:
crates/core/src/local.rs:
crates/core/src/makespan.rs:
crates/core/src/multihop_config.rs:
crates/core/src/octopus_plus.rs:
crates/core/src/online.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
