/root/repo/target/debug/deps/octopus_core-b66133bd0badc500.d: crates/core/src/lib.rs crates/core/src/best_config.rs crates/core/src/error.rs crates/core/src/octopus.rs crates/core/src/state.rs crates/core/src/duplex.rs crates/core/src/engine.rs crates/core/src/hybrid.rs crates/core/src/kport.rs crates/core/src/local.rs crates/core/src/makespan.rs crates/core/src/multihop_config.rs crates/core/src/octopus_plus.rs crates/core/src/online.rs

/root/repo/target/debug/deps/octopus_core-b66133bd0badc500: crates/core/src/lib.rs crates/core/src/best_config.rs crates/core/src/error.rs crates/core/src/octopus.rs crates/core/src/state.rs crates/core/src/duplex.rs crates/core/src/engine.rs crates/core/src/hybrid.rs crates/core/src/kport.rs crates/core/src/local.rs crates/core/src/makespan.rs crates/core/src/multihop_config.rs crates/core/src/octopus_plus.rs crates/core/src/online.rs

crates/core/src/lib.rs:
crates/core/src/best_config.rs:
crates/core/src/error.rs:
crates/core/src/octopus.rs:
crates/core/src/state.rs:
crates/core/src/duplex.rs:
crates/core/src/engine.rs:
crates/core/src/hybrid.rs:
crates/core/src/kport.rs:
crates/core/src/local.rs:
crates/core/src/makespan.rs:
crates/core/src/multihop_config.rs:
crates/core/src/octopus_plus.rs:
crates/core/src/online.rs:
