/root/repo/target/debug/deps/serde_json-adbab7720a44c946.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-adbab7720a44c946: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
