/root/repo/target/debug/deps/serde_json-f4bd908e41f948de.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-f4bd908e41f948de.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-f4bd908e41f948de.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
