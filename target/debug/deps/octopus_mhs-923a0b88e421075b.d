/root/repo/target/debug/deps/octopus_mhs-923a0b88e421075b.d: src/lib.rs

/root/repo/target/debug/deps/octopus_mhs-923a0b88e421075b: src/lib.rs

src/lib.rs:
