/root/repo/target/debug/deps/octopus_baselines-9ae72e13112b7c76.d: crates/baselines/src/lib.rs crates/baselines/src/eclipse.rs crates/baselines/src/eclipse_pp.rs crates/baselines/src/one_hop.rs crates/baselines/src/rotornet.rs crates/baselines/src/solstice.rs crates/baselines/src/ub.rs

/root/repo/target/debug/deps/octopus_baselines-9ae72e13112b7c76: crates/baselines/src/lib.rs crates/baselines/src/eclipse.rs crates/baselines/src/eclipse_pp.rs crates/baselines/src/one_hop.rs crates/baselines/src/rotornet.rs crates/baselines/src/solstice.rs crates/baselines/src/ub.rs

crates/baselines/src/lib.rs:
crates/baselines/src/eclipse.rs:
crates/baselines/src/eclipse_pp.rs:
crates/baselines/src/one_hop.rs:
crates/baselines/src/rotornet.rs:
crates/baselines/src/solstice.rs:
crates/baselines/src/ub.rs:
