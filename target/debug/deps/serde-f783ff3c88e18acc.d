/root/repo/target/debug/deps/serde-f783ff3c88e18acc.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f783ff3c88e18acc.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f783ff3c88e18acc.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
