/root/repo/target/debug/deps/octopus_matching-7bdaafa3ca400ef3.d: crates/matching/src/lib.rs crates/matching/src/blossom.rs crates/matching/src/brute.rs crates/matching/src/bvn.rs crates/matching/src/general.rs crates/matching/src/greedy.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/bipartite.rs crates/matching/src/graph.rs Cargo.toml

/root/repo/target/debug/deps/liboctopus_matching-7bdaafa3ca400ef3.rmeta: crates/matching/src/lib.rs crates/matching/src/blossom.rs crates/matching/src/brute.rs crates/matching/src/bvn.rs crates/matching/src/general.rs crates/matching/src/greedy.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/bipartite.rs crates/matching/src/graph.rs Cargo.toml

crates/matching/src/lib.rs:
crates/matching/src/blossom.rs:
crates/matching/src/brute.rs:
crates/matching/src/bvn.rs:
crates/matching/src/general.rs:
crates/matching/src/greedy.rs:
crates/matching/src/hopcroft_karp.rs:
crates/matching/src/bipartite.rs:
crates/matching/src/graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
