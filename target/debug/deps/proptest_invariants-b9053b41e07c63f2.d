/root/repo/target/debug/deps/proptest_invariants-b9053b41e07c63f2.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-b9053b41e07c63f2: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
