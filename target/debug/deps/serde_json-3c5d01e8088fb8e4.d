/root/repo/target/debug/deps/serde_json-3c5d01e8088fb8e4.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-3c5d01e8088fb8e4.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-3c5d01e8088fb8e4.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
