/root/repo/target/debug/deps/octopus_matching-6c40777e3e3bf1bc.d: crates/matching/src/lib.rs crates/matching/src/blossom.rs crates/matching/src/brute.rs crates/matching/src/bvn.rs crates/matching/src/general.rs crates/matching/src/greedy.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/bipartite.rs crates/matching/src/graph.rs

/root/repo/target/debug/deps/octopus_matching-6c40777e3e3bf1bc: crates/matching/src/lib.rs crates/matching/src/blossom.rs crates/matching/src/brute.rs crates/matching/src/bvn.rs crates/matching/src/general.rs crates/matching/src/greedy.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/bipartite.rs crates/matching/src/graph.rs

crates/matching/src/lib.rs:
crates/matching/src/blossom.rs:
crates/matching/src/brute.rs:
crates/matching/src/bvn.rs:
crates/matching/src/general.rs:
crates/matching/src/greedy.rs:
crates/matching/src/hopcroft_karp.rs:
crates/matching/src/bipartite.rs:
crates/matching/src/graph.rs:
