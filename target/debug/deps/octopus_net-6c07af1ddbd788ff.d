/root/repo/target/debug/deps/octopus_net-6c07af1ddbd788ff.d: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/config.rs crates/net/src/duplex.rs crates/net/src/error.rs crates/net/src/graph.rs crates/net/src/matching.rs crates/net/src/node.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/liboctopus_net-6c07af1ddbd788ff.rlib: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/config.rs crates/net/src/duplex.rs crates/net/src/error.rs crates/net/src/graph.rs crates/net/src/matching.rs crates/net/src/node.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/liboctopus_net-6c07af1ddbd788ff.rmeta: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/config.rs crates/net/src/duplex.rs crates/net/src/error.rs crates/net/src/graph.rs crates/net/src/matching.rs crates/net/src/node.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/analysis.rs:
crates/net/src/config.rs:
crates/net/src/duplex.rs:
crates/net/src/error.rs:
crates/net/src/graph.rs:
crates/net/src/matching.rs:
crates/net/src/node.rs:
crates/net/src/topology.rs:
