/root/repo/target/debug/deps/octopus_baselines-5511ad740a13754b.d: crates/baselines/src/lib.rs crates/baselines/src/eclipse.rs crates/baselines/src/eclipse_pp.rs crates/baselines/src/one_hop.rs crates/baselines/src/rotornet.rs crates/baselines/src/solstice.rs crates/baselines/src/ub.rs Cargo.toml

/root/repo/target/debug/deps/liboctopus_baselines-5511ad740a13754b.rmeta: crates/baselines/src/lib.rs crates/baselines/src/eclipse.rs crates/baselines/src/eclipse_pp.rs crates/baselines/src/one_hop.rs crates/baselines/src/rotornet.rs crates/baselines/src/solstice.rs crates/baselines/src/ub.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/eclipse.rs:
crates/baselines/src/eclipse_pp.rs:
crates/baselines/src/one_hop.rs:
crates/baselines/src/rotornet.rs:
crates/baselines/src/solstice.rs:
crates/baselines/src/ub.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
