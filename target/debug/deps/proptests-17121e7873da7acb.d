/root/repo/target/debug/deps/proptests-17121e7873da7acb.d: crates/matching/tests/proptests.rs

/root/repo/target/debug/deps/proptests-17121e7873da7acb: crates/matching/tests/proptests.rs

crates/matching/tests/proptests.rs:
