/root/repo/target/debug/deps/octopus_sim-228a8a8f41a1173c.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs

/root/repo/target/debug/deps/liboctopus_sim-228a8a8f41a1173c.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs

/root/repo/target/debug/deps/liboctopus_sim-228a8a8f41a1173c.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
