/root/repo/target/debug/deps/end_to_end-d99e52e1d18bb0d8.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d99e52e1d18bb0d8: tests/end_to_end.rs

tests/end_to_end.rs:
