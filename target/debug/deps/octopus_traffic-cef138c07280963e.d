/root/repo/target/debug/deps/octopus_traffic-cef138c07280963e.d: crates/traffic/src/lib.rs crates/traffic/src/flow.rs crates/traffic/src/synthetic.rs crates/traffic/src/traces.rs crates/traffic/src/weight.rs

/root/repo/target/debug/deps/liboctopus_traffic-cef138c07280963e.rlib: crates/traffic/src/lib.rs crates/traffic/src/flow.rs crates/traffic/src/synthetic.rs crates/traffic/src/traces.rs crates/traffic/src/weight.rs

/root/repo/target/debug/deps/liboctopus_traffic-cef138c07280963e.rmeta: crates/traffic/src/lib.rs crates/traffic/src/flow.rs crates/traffic/src/synthetic.rs crates/traffic/src/traces.rs crates/traffic/src/weight.rs

crates/traffic/src/lib.rs:
crates/traffic/src/flow.rs:
crates/traffic/src/synthetic.rs:
crates/traffic/src/traces.rs:
crates/traffic/src/weight.rs:
