/root/repo/target/debug/deps/octopus-7316a5914ac6288d.d: src/bin/octopus.rs

/root/repo/target/debug/deps/octopus-7316a5914ac6288d: src/bin/octopus.rs

src/bin/octopus.rs:
