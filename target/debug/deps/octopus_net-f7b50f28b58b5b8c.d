/root/repo/target/debug/deps/octopus_net-f7b50f28b58b5b8c.d: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/config.rs crates/net/src/duplex.rs crates/net/src/error.rs crates/net/src/graph.rs crates/net/src/matching.rs crates/net/src/node.rs crates/net/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/liboctopus_net-f7b50f28b58b5b8c.rmeta: crates/net/src/lib.rs crates/net/src/analysis.rs crates/net/src/config.rs crates/net/src/duplex.rs crates/net/src/error.rs crates/net/src/graph.rs crates/net/src/matching.rs crates/net/src/node.rs crates/net/src/topology.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/analysis.rs:
crates/net/src/config.rs:
crates/net/src/duplex.rs:
crates/net/src/error.rs:
crates/net/src/graph.rs:
crates/net/src/matching.rs:
crates/net/src/node.rs:
crates/net/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
