/root/repo/target/debug/deps/octopus_bench-24ebaf72182a18fa.d: crates/bench/src/lib.rs crates/bench/src/runners.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/liboctopus_bench-24ebaf72182a18fa.rlib: crates/bench/src/lib.rs crates/bench/src/runners.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/liboctopus_bench-24ebaf72182a18fa.rmeta: crates/bench/src/lib.rs crates/bench/src/runners.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/runners.rs:
crates/bench/src/table.rs:
