/root/repo/target/debug/deps/octopus_sim-a50d2e2021781cac.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs Cargo.toml

/root/repo/target/debug/deps/liboctopus_sim-a50d2e2021781cac.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
