/root/repo/target/debug/deps/octopus_mhs-e700275287ce8456.d: src/lib.rs

/root/repo/target/debug/deps/liboctopus_mhs-e700275287ce8456.rlib: src/lib.rs

/root/repo/target/debug/deps/liboctopus_mhs-e700275287ce8456.rmeta: src/lib.rs

src/lib.rs:
