/root/repo/target/debug/deps/octopus_traffic-f133a1bfbd200226.d: crates/traffic/src/lib.rs crates/traffic/src/flow.rs crates/traffic/src/synthetic.rs crates/traffic/src/traces.rs crates/traffic/src/weight.rs

/root/repo/target/debug/deps/octopus_traffic-f133a1bfbd200226: crates/traffic/src/lib.rs crates/traffic/src/flow.rs crates/traffic/src/synthetic.rs crates/traffic/src/traces.rs crates/traffic/src/weight.rs

crates/traffic/src/lib.rs:
crates/traffic/src/flow.rs:
crates/traffic/src/synthetic.rs:
crates/traffic/src/traces.rs:
crates/traffic/src/weight.rs:
