/root/repo/target/debug/deps/experiments-de4cd87efc263b83.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-de4cd87efc263b83.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
