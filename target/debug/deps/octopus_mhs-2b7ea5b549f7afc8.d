/root/repo/target/debug/deps/octopus_mhs-2b7ea5b549f7afc8.d: src/lib.rs

/root/repo/target/debug/deps/liboctopus_mhs-2b7ea5b549f7afc8.rlib: src/lib.rs

/root/repo/target/debug/deps/liboctopus_mhs-2b7ea5b549f7afc8.rmeta: src/lib.rs

src/lib.rs:
