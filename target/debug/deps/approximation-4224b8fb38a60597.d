/root/repo/target/debug/deps/approximation-4224b8fb38a60597.d: tests/approximation.rs

/root/repo/target/debug/deps/approximation-4224b8fb38a60597: tests/approximation.rs

tests/approximation.rs:
