/root/repo/target/debug/deps/octopus_bench-0173398877c935d2.d: crates/bench/src/lib.rs crates/bench/src/runners.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/liboctopus_bench-0173398877c935d2.rmeta: crates/bench/src/lib.rs crates/bench/src/runners.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/runners.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
