/root/repo/target/debug/deps/cli-e350a65170759962.d: tests/cli.rs

/root/repo/target/debug/deps/cli-e350a65170759962: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_octopus=/root/repo/target/debug/octopus
