/root/repo/target/debug/deps/octopus-a1139de358d595da.d: src/bin/octopus.rs

/root/repo/target/debug/deps/octopus-a1139de358d595da: src/bin/octopus.rs

src/bin/octopus.rs:
