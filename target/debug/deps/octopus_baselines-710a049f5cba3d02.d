/root/repo/target/debug/deps/octopus_baselines-710a049f5cba3d02.d: crates/baselines/src/lib.rs crates/baselines/src/eclipse.rs crates/baselines/src/eclipse_pp.rs crates/baselines/src/one_hop.rs crates/baselines/src/rotornet.rs crates/baselines/src/solstice.rs crates/baselines/src/ub.rs

/root/repo/target/debug/deps/liboctopus_baselines-710a049f5cba3d02.rlib: crates/baselines/src/lib.rs crates/baselines/src/eclipse.rs crates/baselines/src/eclipse_pp.rs crates/baselines/src/one_hop.rs crates/baselines/src/rotornet.rs crates/baselines/src/solstice.rs crates/baselines/src/ub.rs

/root/repo/target/debug/deps/liboctopus_baselines-710a049f5cba3d02.rmeta: crates/baselines/src/lib.rs crates/baselines/src/eclipse.rs crates/baselines/src/eclipse_pp.rs crates/baselines/src/one_hop.rs crates/baselines/src/rotornet.rs crates/baselines/src/solstice.rs crates/baselines/src/ub.rs

crates/baselines/src/lib.rs:
crates/baselines/src/eclipse.rs:
crates/baselines/src/eclipse_pp.rs:
crates/baselines/src/one_hop.rs:
crates/baselines/src/rotornet.rs:
crates/baselines/src/solstice.rs:
crates/baselines/src/ub.rs:
