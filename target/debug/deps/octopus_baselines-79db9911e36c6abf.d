/root/repo/target/debug/deps/octopus_baselines-79db9911e36c6abf.d: crates/baselines/src/lib.rs crates/baselines/src/eclipse.rs crates/baselines/src/eclipse_pp.rs crates/baselines/src/one_hop.rs crates/baselines/src/rotornet.rs crates/baselines/src/solstice.rs crates/baselines/src/ub.rs

/root/repo/target/debug/deps/liboctopus_baselines-79db9911e36c6abf.rlib: crates/baselines/src/lib.rs crates/baselines/src/eclipse.rs crates/baselines/src/eclipse_pp.rs crates/baselines/src/one_hop.rs crates/baselines/src/rotornet.rs crates/baselines/src/solstice.rs crates/baselines/src/ub.rs

/root/repo/target/debug/deps/liboctopus_baselines-79db9911e36c6abf.rmeta: crates/baselines/src/lib.rs crates/baselines/src/eclipse.rs crates/baselines/src/eclipse_pp.rs crates/baselines/src/one_hop.rs crates/baselines/src/rotornet.rs crates/baselines/src/solstice.rs crates/baselines/src/ub.rs

crates/baselines/src/lib.rs:
crates/baselines/src/eclipse.rs:
crates/baselines/src/eclipse_pp.rs:
crates/baselines/src/one_hop.rs:
crates/baselines/src/rotornet.rs:
crates/baselines/src/solstice.rs:
crates/baselines/src/ub.rs:
