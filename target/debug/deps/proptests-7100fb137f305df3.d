/root/repo/target/debug/deps/proptests-7100fb137f305df3.d: crates/net/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7100fb137f305df3: crates/net/tests/proptests.rs

crates/net/tests/proptests.rs:
