/root/repo/target/debug/deps/octopus_sim-71ad55485d50462b.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs

/root/repo/target/debug/deps/octopus_sim-71ad55485d50462b: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/report.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/report.rs:
