/root/repo/target/debug/deps/generalizations-c4cb19ee91e93371.d: tests/generalizations.rs

/root/repo/target/debug/deps/generalizations-c4cb19ee91e93371: tests/generalizations.rs

tests/generalizations.rs:
