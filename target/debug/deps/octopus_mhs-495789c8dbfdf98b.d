/root/repo/target/debug/deps/octopus_mhs-495789c8dbfdf98b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liboctopus_mhs-495789c8dbfdf98b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
