/root/repo/target/debug/deps/experiments-005629b444435411.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-005629b444435411: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
