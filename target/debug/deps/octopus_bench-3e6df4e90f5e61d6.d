/root/repo/target/debug/deps/octopus_bench-3e6df4e90f5e61d6.d: crates/bench/src/lib.rs crates/bench/src/runners.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/octopus_bench-3e6df4e90f5e61d6: crates/bench/src/lib.rs crates/bench/src/runners.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/runners.rs:
crates/bench/src/table.rs:
