/root/repo/target/debug/deps/octopus_matching-4e820a55d209e203.d: crates/matching/src/lib.rs crates/matching/src/blossom.rs crates/matching/src/brute.rs crates/matching/src/bvn.rs crates/matching/src/general.rs crates/matching/src/greedy.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/bipartite.rs crates/matching/src/graph.rs

/root/repo/target/debug/deps/liboctopus_matching-4e820a55d209e203.rlib: crates/matching/src/lib.rs crates/matching/src/blossom.rs crates/matching/src/brute.rs crates/matching/src/bvn.rs crates/matching/src/general.rs crates/matching/src/greedy.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/bipartite.rs crates/matching/src/graph.rs

/root/repo/target/debug/deps/liboctopus_matching-4e820a55d209e203.rmeta: crates/matching/src/lib.rs crates/matching/src/blossom.rs crates/matching/src/brute.rs crates/matching/src/bvn.rs crates/matching/src/general.rs crates/matching/src/greedy.rs crates/matching/src/hopcroft_karp.rs crates/matching/src/bipartite.rs crates/matching/src/graph.rs

crates/matching/src/lib.rs:
crates/matching/src/blossom.rs:
crates/matching/src/brute.rs:
crates/matching/src/bvn.rs:
crates/matching/src/general.rs:
crates/matching/src/greedy.rs:
crates/matching/src/hopcroft_karp.rs:
crates/matching/src/bipartite.rs:
crates/matching/src/graph.rs:
