/root/repo/target/debug/deps/octopus-8069a816b78aebfa.d: src/bin/octopus.rs

/root/repo/target/debug/deps/octopus-8069a816b78aebfa: src/bin/octopus.rs

src/bin/octopus.rs:
