/root/repo/target/debug/deps/octopus_traffic-3cd23bf79b0674aa.d: crates/traffic/src/lib.rs crates/traffic/src/flow.rs crates/traffic/src/synthetic.rs crates/traffic/src/traces.rs crates/traffic/src/weight.rs

/root/repo/target/debug/deps/liboctopus_traffic-3cd23bf79b0674aa.rlib: crates/traffic/src/lib.rs crates/traffic/src/flow.rs crates/traffic/src/synthetic.rs crates/traffic/src/traces.rs crates/traffic/src/weight.rs

/root/repo/target/debug/deps/liboctopus_traffic-3cd23bf79b0674aa.rmeta: crates/traffic/src/lib.rs crates/traffic/src/flow.rs crates/traffic/src/synthetic.rs crates/traffic/src/traces.rs crates/traffic/src/weight.rs

crates/traffic/src/lib.rs:
crates/traffic/src/flow.rs:
crates/traffic/src/synthetic.rs:
crates/traffic/src/traces.rs:
crates/traffic/src/weight.rs:
