/root/repo/target/debug/deps/octopus-ffac3d7d3de0654f.d: src/bin/octopus.rs Cargo.toml

/root/repo/target/debug/deps/liboctopus-ffac3d7d3de0654f.rmeta: src/bin/octopus.rs Cargo.toml

src/bin/octopus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
