/root/repo/target/debug/deps/octopus_bench-0ee9c1640d3ca420.d: crates/bench/src/lib.rs crates/bench/src/runners.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/liboctopus_bench-0ee9c1640d3ca420.rlib: crates/bench/src/lib.rs crates/bench/src/runners.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/liboctopus_bench-0ee9c1640d3ca420.rmeta: crates/bench/src/lib.rs crates/bench/src/runners.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/runners.rs:
crates/bench/src/table.rs:
