/root/repo/target/debug/examples/online_arrivals-d1877b43d979efee.d: examples/online_arrivals.rs

/root/repo/target/debug/examples/online_arrivals-d1877b43d979efee: examples/online_arrivals.rs

examples/online_arrivals.rs:
