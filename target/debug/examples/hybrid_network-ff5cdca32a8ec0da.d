/root/repo/target/debug/examples/hybrid_network-ff5cdca32a8ec0da.d: examples/hybrid_network.rs

/root/repo/target/debug/examples/hybrid_network-ff5cdca32a8ec0da: examples/hybrid_network.rs

examples/hybrid_network.rs:
