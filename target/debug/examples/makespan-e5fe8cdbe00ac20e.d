/root/repo/target/debug/examples/makespan-e5fe8cdbe00ac20e.d: examples/makespan.rs

/root/repo/target/debug/examples/makespan-e5fe8cdbe00ac20e: examples/makespan.rs

examples/makespan.rs:
