/root/repo/target/debug/examples/multi_route_lb-a2f8627132965794.d: examples/multi_route_lb.rs

/root/repo/target/debug/examples/multi_route_lb-a2f8627132965794: examples/multi_route_lb.rs

examples/multi_route_lb.rs:
