/root/repo/target/debug/examples/fso_datacenter-f290d958dca9a868.d: examples/fso_datacenter.rs

/root/repo/target/debug/examples/fso_datacenter-f290d958dca9a868: examples/fso_datacenter.rs

examples/fso_datacenter.rs:
