/root/repo/target/debug/examples/quickstart-00c0bc2d31d10bfd.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-00c0bc2d31d10bfd: examples/quickstart.rs

examples/quickstart.rs:
